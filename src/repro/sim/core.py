"""Core event loop, events and processes.

Semantics follow the familiar generator-coroutine discrete-event style:

* An :class:`Event` is triggered exactly once, either successfully
  (carrying a value) or as a failure (carrying an exception).
* A :class:`Process` wraps a generator.  The generator ``yield``\\ s
  events; the process resumes when the yielded event is processed.  A
  failed event is re-raised inside the generator, so protocol code can
  handle simulated faults with ordinary ``try``/``except``.
* The :class:`Environment` owns the clock and the event heap.  Events
  scheduled for the same instant are processed in scheduling order,
  which keeps runs deterministic.

The engine is the hot path under every experiment sweep, so the inner
loop is tuned:

* callback lists are created lazily — an event allocates no list until
  the first waiter attaches (``callbacks`` stays a plain list for
  waiters; it reads as ``None`` once the event is processed, exactly as
  before);
* the default scheduler is a *calendar queue*: pending events live in
  per-instant buckets (plain lists in scheduling order) and only the
  set of **distinct** occupied timestamps sits in a binary heap.  An
  event triggered at the current instant — the dominant case: every
  ``succeed``/``fail``, every Store hand-off — is one list append and
  one indexed read, no heap traffic at all; a timeout shares its
  bucket (and therefore its heap entry) with every other event landing
  on the same nanosecond.  Far-future or sparse events degrade
  gracefully to the distinct-times heap.  Pop order is identical to
  the classic ``(time, seq)`` heap, so runs are byte-for-byte the
  same; ``Environment(scheduler="heap")`` keeps the legacy heap for
  differential testing, and any ``tie_break`` policy forces it (an
  arbitrary tie key needs a real priority queue);
* :meth:`Environment.sleep` recycles processed :class:`Timeout`
  objects from a free pool.  Recycling is opt-in and guarded by an
  explicit ``_recycle`` flag rather than a refcount probe (which
  silently stopped firing under ``coverage``/``sys.settrace``):
  ``sleep()`` timeouts are fire-and-forget by contract — yield them
  immediately and never retain them — while :meth:`Environment.timeout`
  events are never pooled and safe to hold, pass to conditions, or use
  as ``run(until=...)`` targets;
* :meth:`Environment.run` processes events in an inlined loop instead
  of dispatching through :meth:`step` per event.

Same-instant ordering is *pluggable*: the heap key of an event is
``(time, tie_key)`` where ``tie_key`` defaults to the scheduling
sequence number (strict FIFO — byte-identical to the historical
behaviour).  An :class:`Environment` built with a ``tie_break`` policy
(any object with a ``key(when, seq) -> int`` method, see
:mod:`repro.fuzz.policies`) maps each ``(when, seq)`` pair to an
alternative key, deterministically permuting events that share a
timestamp.  Every permutation a policy can produce is a legal schedule
of the simulated machine; the fuzz harness uses this to explore
tie-break orderings the default FIFO run never exercises.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (double trigger, bad yield, ...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process sees this exception at its current yield
    point; ``cause`` carries whatever the interrupter passed.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


_PENDING = object()
#: sentinel stored in ``_callbacks`` once an event's callbacks have run
_PROCESSED = object()
#: maximum number of recycled Timeout objects kept per environment
_POOL_MAX = 256
#: compact the current calendar bucket once this many slots are consumed,
#: so a long same-instant cascade does not grow the list without bound
_COMPACT = 4096


class Event:
    """A one-shot occurrence other processes can wait on."""

    __slots__ = ("env", "_callbacks", "_value", "_ok", "_defused",
                 "_scheduled")

    def __init__(self, env: "Environment"):
        self.env = env
        # None = no waiters yet (lazy), list = waiters, _PROCESSED = done.
        self._callbacks: Any = None
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused: bool = False
        self._scheduled: bool = False

    # -- state ---------------------------------------------------------
    @property
    def callbacks(self) -> Optional[list]:
        """Callables invoked (with this event) when the event is
        processed; ``None`` once it has been processed."""
        cbs = self._callbacks
        if cbs is _PROCESSED:
            return None
        if cbs is None:
            cbs = self._callbacks = []
        return cbs

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._callbacks is _PROCESSED

    @property
    def ok(self) -> bool:
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger successfully with ``value`` (processed this instant)."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._scheduled = True
        env = self.env
        if env._use_heap:
            tb = env._tie_break
            seq = env._seq
            heappush(env._heap,
                     (env._now, seq if tb is None else tb.key(env._now, seq),
                      self))
            env._seq = seq + 1
        else:
            # Calendar fast path: triggering always lands on the current
            # instant, which is exactly the open bucket.
            env._bucket.append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger as a failure carrying ``exception``."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self._scheduled = True
        env = self.env
        if env._use_heap:
            tb = env._tie_break
            seq = env._seq
            heappush(env._heap,
                     (env._now, seq if tb is None else tb.key(env._now, seq),
                      self))
            env._seq = seq + 1
        else:
            env._bucket.append(self)
        return self

    def defuse(self) -> None:
        """Mark a failure as handled so the loop does not re-raise it."""
        self._defused = True

    def _on_orphaned(self) -> None:
        """Hook: the last waiter detached before the event triggered.

        Called by :meth:`Process.interrupt` when it strips the final
        callback off an untriggered event.  Resource primitives override
        this to drop the dead waiter from their queues so a later grant
        or item hand-off cannot be silently lost.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation.

    ``_recycle`` marks a timeout as pool-eligible: only
    :meth:`Environment.sleep` sets it, and only the run loop consults
    it.  A plain :meth:`Environment.timeout` event is never recycled,
    so it is always safe to retain.
    """

    __slots__ = ("delay", "_recycle")

    def __init__(self, env: "Environment", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        self.env = env
        self._callbacks = None
        self._value = value
        self._ok = True
        self._defused = False
        self._scheduled = True
        self.delay = delay
        self._recycle = False
        env._push(env._now + delay, self)


class _ConditionBase(Event):
    """Shared machinery for AllOf/AnyOf."""

    __slots__ = ("events", "_n_done")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = tuple(events)
        self._n_done = 0
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("cannot mix events from different environments")
        # Wire up after validation so a raise leaves no dangling callbacks.
        for ev in self.events:
            cbs = ev._callbacks
            if cbs is _PROCESSED:
                self._check(ev)
            elif cbs is None:
                ev._callbacks = [self._check]
            else:
                cbs.append(self._check)
        if not self.events and not self.triggered:
            self.succeed(self._result())

    def _result(self) -> dict[Event, Any]:
        return {ev: ev.value for ev in self.events if ev.processed and ev.ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defuse()
            self.fail(event.value)
            return
        self._n_done += 1
        if self._satisfied():
            self.succeed(self._result())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _on_orphaned(self) -> None:
        # The condition lost its last waiter before triggering: detach
        # _check from every pending constituent, and propagate
        # orphanhood so queue-backed constituents (Store getters,
        # Resource requests, credit gates) withdraw themselves instead
        # of absorbing a later hand-off into a dead condition.
        for ev in self.events:
            cbs = ev._callbacks
            if cbs is not _PROCESSED and cbs and self._check in cbs:
                cbs.remove(self._check)
                if not cbs and ev._value is _PENDING:
                    ev._on_orphaned()


class AllOf(_ConditionBase):
    """Succeeds when every constituent event has succeeded."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done == len(self.events)


class AnyOf(_ConditionBase):
    """Succeeds as soon as any constituent event succeeds."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done >= 1


class Process(Event):
    """A running generator; the process-event fires when it returns."""

    __slots__ = ("generator", "name", "_target", "is_alive")

    def __init__(self, env: "Environment", generator: Generator,
                 name: Optional[str] = None):
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        self.is_alive = True
        # Kick off at the current instant.
        start = Event(env)
        start.succeed()
        start._callbacks = [self._resume]

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at this instant."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        if self._target is None:
            raise SimulationError(
                f"cannot interrupt {self.name!r}: it is not waiting yet")
        env = self.env
        hit = Event(env)
        hit._ok = False
        hit._value = Interrupt(cause)
        hit._defused = True
        # Detach from whatever it was waiting on so the wait outcome
        # does not also resume it later.
        target = self._target
        cbs = target._callbacks
        if cbs is not _PROCESSED and cbs and self._resume in cbs:
            cbs.remove(self._resume)
            if not cbs and target._value is _PENDING:
                # The wait target lost its last waiter before triggering:
                # let queue-backed events (Store getters/putters, Resource
                # requests) withdraw themselves instead of absorbing a
                # later hand-off into a dead event.
                target._on_orphaned()
        env._schedule(hit, 0)
        hit._callbacks = [self._resume]

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        generator = self.generator
        try:
            while True:
                try:
                    if event._ok:
                        yielded = generator.send(event._value)
                    else:
                        event._defused = True
                        yielded = generator.throw(event._value)
                except StopIteration as stop:
                    self.is_alive = False
                    self._target = None
                    self.succeed(stop.value)
                    return
                except BaseException as exc:
                    self.is_alive = False
                    self._target = None
                    self.fail(exc)
                    return

                if not isinstance(yielded, Event):
                    err = SimulationError(
                        f"process {self.name!r} yielded {yielded!r}, "
                        "which is not an Event")
                    self.is_alive = False
                    self._target = None
                    self.fail(err)
                    return
                cbs = yielded._callbacks
                if cbs is _PROCESSED:
                    # Already settled: loop and feed its value straight in.
                    event = yielded
                    continue
                if cbs is None:
                    yielded._callbacks = [self._resume]
                else:
                    cbs.append(self._resume)
                self._target = yielded
                return
        finally:
            env._active_process = None


class Environment:
    """Owner of the virtual clock and the pending-event queue.

    ``tie_break`` selects the same-instant ordering policy: ``None``
    (the default) keeps strict FIFO scheduling order and is
    byte-identical to an environment without the hook; any object with
    a ``key(when, seq) -> int`` method (e.g.
    :class:`repro.fuzz.policies.ShuffledTieBreak`) replaces the heap
    tie key, deterministically permuting same-timestamp events.

    ``scheduler`` picks the queue implementation: ``"calendar"`` (the
    default) keeps per-instant buckets with a heap of distinct
    timestamps; ``"heap"`` is the classic ``(time, seq)`` binary heap.
    Both produce identical schedules for FIFO runs — the heap survives
    as the differential-testing reference and as the carrier for
    ``tie_break`` policies, which force it.
    """

    __slots__ = ("_now", "_heap", "_seq", "_active_process", "_timeout_pool",
                 "_audit", "_tie_break", "_telemetry", "_recorder",
                 "_use_heap", "_bucket", "_pos", "_buckets", "_times",
                 "_n_events")

    def __init__(self, initial_time: int = 0, tie_break=None,
                 scheduler: str = "calendar"):
        if scheduler not in ("calendar", "heap"):
            raise SimulationError(
                f"unknown scheduler {scheduler!r} "
                "(expected 'calendar' or 'heap')")
        self._now: int = initial_time
        self._heap: list[tuple[int, int, Event]] = []
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        self._timeout_pool: list[Timeout] = []
        # Optional repro.audit.Auditor; instrumented layers look it up
        # with getattr(env, "_audit", None) so the off-path cost is one
        # attribute read.
        self._audit = None
        # Optional repro.telemetry.TelemetrySession, looked up the same
        # way by runtime-created endpoints that register instruments.
        self._telemetry = None
        # Optional repro.telemetry.recorder.FlightRecorder; heartbeats
        # are taken only where the clock advances to a new instant, so
        # the disabled path costs one attribute read per clock advance
        # and the per-event hot loop stays untouched.
        self._recorder = None
        if tie_break is not None and not callable(
                getattr(tie_break, "key", None)):
            raise SimulationError(
                f"tie_break policy {tie_break!r} has no key(when, seq) "
                "method")
        self._tie_break = tie_break
        # An arbitrary tie key needs a real priority queue; the calendar
        # only preserves FIFO order within a bucket.
        self._use_heap = scheduler == "heap" or tie_break is not None
        #: events pending at the current instant, consumed by index
        self._bucket: list[Event] = []
        self._pos: int = 0
        #: future (or, via _schedule_at, past) instants -> their buckets
        self._buckets: dict[int, list[Event]] = {}
        #: heap of the *distinct* occupied timestamps in _buckets
        self._times: list[int] = []
        self._n_events: int = 0

    @property
    def tie_break(self):
        """The installed tie-break policy (``None`` = strict FIFO)."""
        return self._tie_break

    @property
    def scheduler(self) -> str:
        """Active queue implementation: ``"calendar"`` or ``"heap"``."""
        return "heap" if self._use_heap else "calendar"

    @property
    def events_processed(self) -> int:
        """Total events processed so far (perf-benchmark counter)."""
        return self._n_events

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- factories -----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """A timer event that is safe to retain.

        The returned event is never recycled, so it may be stored,
        passed to :meth:`all_of`/:meth:`any_of`, or used as a
        ``run(until=...)`` target.  Hot paths that just pause should
        prefer :meth:`sleep`.
        """
        return Timeout(self, int(delay), value)

    def sleep(self, delay: int) -> Timeout:
        """A fire-and-forget timer for hot paths; pooled and recycled.

        Contract: ``yield env.sleep(d)`` immediately and do not retain
        the returned event — once its callbacks have run, the engine
        recycles it into a free pool for a later ``sleep()``.  The
        hardware and firmware models use this for every wire, DMA and
        processing delay.  Code that keeps the event around (conditions,
        ``run(until=...)`` targets, value-carrying timers) must use
        :meth:`timeout` instead.
        """
        delay = int(delay)
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay {delay}")
            t = pool.pop()
            t._callbacks = None
            t._value = None
            t._ok = True
            t._defused = False
            t.delay = delay
            self._push(self._now + delay, t)
            return t
        t = Timeout(self, delay)
        t._recycle = True
        return t

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------
    def _push(self, when: int, event: Event) -> None:
        """Enqueue a triggered event for processing at ``when``."""
        if self._use_heap:
            tb = self._tie_break
            seq = self._seq
            heappush(self._heap,
                     (when, seq if tb is None else tb.key(when, seq), event))
            self._seq = seq + 1
        elif when == self._now:
            self._bucket.append(event)
        else:
            bucket = self._buckets.get(when)
            if bucket is None:
                # First event on this instant: the only heap operation a
                # whole bucket ever costs.
                self._buckets[when] = [event]
                heappush(self._times, when)
            else:
                bucket.append(event)

    def _schedule(self, event: Event, delay: int) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} already scheduled")
        event._scheduled = True
        self._push(self._now + delay, event)

    def _schedule_at(self, event: Event, when: int) -> None:
        """Schedule a triggered event at an absolute time (test hook).

        Unlike every public path this accepts a ``when`` in the past;
        the run loop surfaces such events to the auditor's past-event
        check.  Used by the audit selftest to provoke exactly that
        violation without reaching into queue internals.
        """
        if event._scheduled:
            raise SimulationError(f"{event!r} already scheduled")
        event._scheduled = True
        self._push(when, event)

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or None when idle."""
        if self._use_heap:
            return self._heap[0][0] if self._heap else None
        if self._pos < len(self._bucket):
            return self._now
        return self._times[0] if self._times else None

    def step(self) -> None:
        """Process exactly one event."""
        if self._use_heap:
            if not self._heap:
                raise SimulationError("no scheduled events")
            when, _, event = heappop(self._heap)
            if when < self._now:  # pragma: no cover - engine invariant
                raise SimulationError("time went backwards")
            if self._recorder is not None and when > self._now:
                self._recorder.on_advance(when, self._n_events)
            self._now = when
        else:
            if self._pos >= len(self._bucket):
                if not self._times:
                    raise SimulationError("no scheduled events")
                when = heappop(self._times)
                if when < self._now:  # pragma: no cover - engine invariant
                    raise SimulationError("time went backwards")
                if self._recorder is not None:
                    self._recorder.on_advance(when, self._n_events)
                self._bucket = self._buckets.pop(when)
                self._pos = 0
                self._now = when
            event = self._bucket[self._pos]
            self._pos += 1
            # Same amortized compaction as the run() loop — step() used
            # to never compact, so a long-lived same-instant bucket
            # pinned every consumed event for its whole lifetime.
            if self._pos >= _COMPACT and self._pos * 2 >= len(self._bucket):
                del self._bucket[:self._pos]
                self._pos = 0
        self._n_events += 1
        callbacks = event._callbacks
        event._callbacks = _PROCESSED
        if callbacks:
            for callback in callbacks:
                callback(event)
            if type(event) is Timeout and event._recycle \
                    and len(self._timeout_pool) < _POOL_MAX:
                self._timeout_pool.append(event)
        if not event._ok and not event._defused:
            # An unhandled simulated failure is a real failure.
            raise event._value

    def run(self, until: Optional[int | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be an absolute time (ns), an :class:`Event` (run
        until it is processed, return its value), or ``None`` (run the
        queue dry).
        """
        stop: Optional[Event] = None
        horizon: Optional[int] = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
            else:
                horizon = int(until)
                if horizon < self._now:
                    raise SimulationError(
                        f"until={horizon} is in the past (now={self._now})")
        if self._use_heap:
            return self._run_heap(stop, horizon)
        buckets = self._buckets
        times = self._times
        pool = self._timeout_pool
        audit = self._audit
        recorder = self._recorder
        bucket = self._bucket
        pos = self._pos
        n = self._n_events
        try:
            while True:
                if stop is not None and stop._callbacks is _PROCESSED:
                    if not stop._ok:
                        raise stop._value
                    return stop._value
                if pos < len(bucket):
                    # Inlined hot path: one indexed read per event.
                    event = bucket[pos]
                    pos += 1
                else:
                    # Current instant drained — advance the clock to the
                    # next occupied timestamp (or stop at the horizon).
                    if not times:
                        if stop is not None:
                            raise SimulationError(
                                "simulation ran out of events before the "
                                "target event triggered (deadlock at "
                                f"t={self._now} ns)")
                        if audit is not None:
                            audit.on_quiesce(self)
                        if horizon is not None:
                            self._now = horizon
                        return None
                    if horizon is not None and times[0] > horizon:
                        self._now = horizon
                        return None
                    when = heappop(times)
                    bucket = self._bucket = buckets.pop(when)
                    pos = 0
                    if audit is not None and when < self._now:
                        audit.on_past_event(bucket[0], when, self._now)
                    if recorder is not None:
                        recorder.on_advance(when, n)
                    self._now = when
                    continue
                n += 1
                callbacks = event._callbacks
                event._callbacks = _PROCESSED
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                    # Interrupt strips a waiter list down to []; such a
                    # timeout may still be referenced by the process, so
                    # only non-empty callback lists recycle.
                    if type(event) is Timeout and event._recycle \
                            and len(pool) < _POOL_MAX:
                        pool.append(event)
                if not event._ok and not event._defused:
                    raise event._value
                if pos >= _COMPACT and pos * 2 >= len(bucket):
                    # Amortized compaction: only shift the tail once the
                    # consumed prefix dominates the bucket.  Compacting
                    # unconditionally every _COMPACT events is O(len)
                    # per slice on a huge same-instant bucket (open-loop
                    # fan-in), i.e. quadratic overall; gating on the
                    # half-way mark keeps each element shifted O(1)
                    # times while still bounding memory at ~2x live.
                    del bucket[:pos]
                    pos = 0
        finally:
            self._pos = pos
            self._n_events = n

    def _run_heap(self, stop: Optional[Event],
                  horizon: Optional[int]) -> Any:
        """The classic binary-heap run loop (tie-break & differential
        reference path)."""
        heap = self._heap
        pool = self._timeout_pool
        audit = self._audit
        recorder = self._recorder
        n = self._n_events
        try:
            while True:
                if stop is not None:
                    if stop._callbacks is _PROCESSED:
                        if not stop._ok:
                            raise stop._value
                        return stop._value
                    if not heap:
                        raise SimulationError(
                            "simulation ran out of events before the target "
                            f"event triggered (deadlock at t={self._now} ns)")
                elif horizon is not None:
                    if not heap or heap[0][0] > horizon:
                        if audit is not None and not heap:
                            audit.on_quiesce(self)
                        self._now = horizon
                        return None
                elif not heap:
                    if audit is not None:
                        audit.on_quiesce(self)
                    return None
                # Inlined step(): one dispatch per event is the hot path.
                when, _, event = heappop(heap)
                if audit is not None and when < self._now:
                    audit.on_past_event(event, when, self._now)
                if recorder is not None and when > self._now:
                    recorder.on_advance(when, n)
                self._now = when
                n += 1
                callbacks = event._callbacks
                event._callbacks = _PROCESSED
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                    if type(event) is Timeout and event._recycle \
                            and len(pool) < _POOL_MAX:
                        pool.append(event)
                if not event._ok and not event._defused:
                    raise event._value
        finally:
            self._n_events = n
