"""repro — reproduction of "Semi-User-Level Communication Architecture"
(Meng, Ma, He, Xiao, Xu — IPPS 2002).

The package simulates the DAWNING-3000 superserver substrate (SMP
nodes, PCI, Myrinet-class NICs with MCP firmware, cut-through switches,
an AIX-like kernel) and implements the paper's BCL protocol on top,
together with user-level and kernel-level baselines, EADI-2/MPI/PVM
upper layers, and a benchmark harness that regenerates every table and
figure of the paper's evaluation.

Quick start::

    from repro import Cluster, measure_one_way

    cluster = Cluster(n_nodes=2)
    sample = measure_one_way(cluster, nbytes=0)
    print(f"one-way 0-byte latency: {sample.latency_us:.2f} us")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.cluster import Cluster
from repro.config import DAWNING_3000, CostModel, dawning_3000, lossy_dawning
from repro.faults import Brownout, FaultPlan, GilbertElliott
from repro.instrument.measure import (
    LatencySample,
    measure_intra_node,
    measure_one_way,
    sweep_message_sizes,
)
from repro.instrument.recovery import RecoveryTracker, recovery_summary

__version__ = "1.0.0"

__all__ = [
    "Brownout",
    "Cluster",
    "CostModel",
    "DAWNING_3000",
    "FaultPlan",
    "GilbertElliott",
    "LatencySample",
    "RecoveryTracker",
    "dawning_3000",
    "lossy_dawning",
    "measure_intra_node",
    "measure_one_way",
    "recovery_summary",
    "sweep_message_sizes",
    "__version__",
]
