"""Full-duplex network links with cut-through forwarding semantics.

Latency model (faithful to wormhole/cut-through routing): a packet
crossing a link experiences only the propagation delay — serialization
is paid once, at the source NIC's wire-injection engine.  Occupancy
model: each link direction can still only carry one packet's worth of
bytes per serialization window, so the pump process holds the direction
for ``wire_bytes / wire_rate`` before accepting the next packet.  That
makes shared links a throughput bottleneck under congestion without
re-charging serialization latency at every hop.

Backpressure: each direction has a small bounded inbox; when a
downstream link is saturated the upstream sender's ``send`` blocks,
which is the discrete analogue of wormhole flow control.

Fault injection: a link may carry an *injector* (see
:mod:`repro.faults`) that adjudicates each packet into zero or more
deliveries — drop, corrupt, duplicate, or delay/reorder.  Faulted
packets still occupy the serialization window (the bits crossed the
wire before being lost), so lossy links congest realistically.  A
duplicated packet is one physical wire crossing adjudicated into two
deliveries, so it holds exactly one window — occupancy accounts wire
time, not delivery count.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.config import CostModel
from repro.faults import as_injector
from repro.firmware.packet import Packet
from repro.sim import Environment, Store, us
from repro.sim.time import transfer_time_ns

__all__ = ["Link", "LinkEndpoint"]

#: Packets a direction may buffer before senders block (wormhole slack).
INBOX_CAPACITY = 4


class LinkEndpoint:
    """One end of a link.  Owners attach a receive callback."""

    def __init__(self, link: "Link", label: str):
        self.link = link
        self.label = label
        self._on_receive: Optional[Callable[["LinkEndpoint", Packet], None]] = None
        self.peer: Optional["LinkEndpoint"] = None

    def attach(self, on_receive: Callable[["LinkEndpoint", Packet], None]) -> None:
        """Register the packet-arrival callback (NIC or switch port)."""
        if self._on_receive is not None:
            raise RuntimeError(f"endpoint {self.label} already attached")
        self._on_receive = on_receive

    def send(self, packet: Packet):
        """Transmit toward the peer endpoint; may block on backpressure.

        Returns the store-put event; yield it to respect flow control.
        """
        return self.link._enqueue(self, packet)

    def _deliver(self, packet: Packet) -> None:
        if self._on_receive is None:
            raise RuntimeError(
                f"packet arrived at unattached endpoint {self.label}")
        self._on_receive(self, packet)


class Link:
    """A bidirectional link: two independent directed channels."""

    def __init__(self, env: Environment, cfg: CostModel, name: str,
                 fault_injector: Optional[Callable[[Packet], Packet]] = None):
        self.env = env
        self.cfg = cfg
        self.name = name
        #: Fault adjudicator (see :mod:`repro.faults`): either a full
        #: :class:`~repro.faults.FaultInjector` or a wrapped legacy
        #: callback (packet -> packet | None-to-drop).
        self.injector = as_injector(fault_injector)
        self.a = LinkEndpoint(self, f"{name}.a")
        self.b = LinkEndpoint(self, f"{name}.b")
        self.a.peer, self.b.peer = self.b, self.a
        self._inboxes = {self.a: Store(env, capacity=INBOX_CAPACITY),
                         self.b: Store(env, capacity=INBOX_CAPACITY)}
        self.busy_ns = {self.a: 0, self.b: 0}  # per-direction occupancy
        self.packets_carried = 0
        self.packets_dropped = 0
        env.process(self._pump(self.a), name=f"{name}.pump.a_to_b")
        env.process(self._pump(self.b), name=f"{name}.pump.b_to_a")

    def _enqueue(self, src: LinkEndpoint, packet: Packet):
        if src not in self._inboxes:
            raise ValueError(f"{src.label} is not an endpoint of {self.name}")
        return self._inboxes[src].put(packet)

    def register_metrics(self, registry) -> None:
        """Expose this link's occupancy and carry/drop tallies."""
        registry.register_callback(
            "repro_link_busy_ns",
            lambda: self.busy_ns[self.a] + self.busy_ns[self.b],
            "serialization-window occupancy, both directions",
            kind="counter", link=self.name)
        registry.register_callback(
            "repro_link_packets_total", lambda: self.packets_carried,
            kind="counter", link=self.name, outcome="carried")
        registry.register_callback(
            "repro_link_packets_total", lambda: self.packets_dropped,
            kind="counter", link=self.name, outcome="dropped")

    def _pump(self, src: LinkEndpoint) -> Generator:
        """Drain one direction: deliver after propagation, hold for
        the serialization window."""
        inbox = self._inboxes[src]
        dst = src.peer
        prop = us(self.cfg.link_propagation_us)
        while True:
            packet: Packet = yield inbox.get()
            serialization = transfer_time_ns(
                packet.wire_bytes(self.cfg.wire_header_bytes),
                self.cfg.wire_mb_s)
            if self.injector is not None:
                outcomes = self.injector.adjudicate(packet)
            else:
                outcomes = ((0, packet),)
            # A dropped or corrupted packet crossed the wire before it
            # was lost, so it occupies the serialization window like any
            # other.  A duplicate is a single physical crossing
            # adjudicated into two deliveries: it holds exactly one
            # window (multiplying by the outcome count double-charged
            # busy_ns versus actual wire time).
            self.busy_ns[src] += serialization
            if not outcomes:
                self.packets_dropped += 1
                yield self.env.sleep(serialization)
                continue
            self.packets_carried += 1
            for extra_delay, out_packet in outcomes:
                self.env.process(
                    self._deliver_after(dst, out_packet, prop + extra_delay),
                    name=f"{self.name}.deliver")
            yield self.env.sleep(serialization)

    def _deliver_after(self, dst: LinkEndpoint, packet: Packet,
                       delay: int) -> Generator:
        yield self.env.sleep(delay)
        dst._deliver(packet)
