"""Host physical memory: a flat byte store plus a page-frame allocator.

The DAWNING-3000 nodes carry "large capacity of memory"; the paper's
whole argument for kernel-side address translation is that NIC-resident
translation caches stop scaling there.  We therefore model memory
page-accurately: virtual address spaces (:mod:`repro.kernel.vm`) map
onto page frames handed out by :class:`FrameAllocator`, and DMA works
on *physical* segment lists exactly as the BCL kernel module produces
them.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["PhysicalMemory", "FrameAllocator", "OutOfMemoryError"]


class OutOfMemoryError(MemoryError):
    """No free page frames left."""


class PhysicalMemory:
    """Byte-addressable physical memory backed by one ``bytearray``."""

    def __init__(self, size: int, page_size: int = 4096):
        if size <= 0 or size % page_size:
            raise ValueError(
                f"memory size {size} must be a positive multiple of the "
                f"page size {page_size}")
        self.size = size
        self.page_size = page_size
        self._data = bytearray(size)

    def read(self, paddr: int, length: int) -> bytes:
        self._check(paddr, length)
        return bytes(self._data[paddr:paddr + length])

    def write(self, paddr: int, data: bytes) -> None:
        self._check(paddr, len(data))
        self._data[paddr:paddr + len(data)] = data

    def read_gather(self, segments: Iterable[tuple[int, int]]) -> bytes:
        """Read a physical scatter/gather list into one buffer."""
        return b"".join(self.read(paddr, length) for paddr, length in segments)

    def write_scatter(self, segments: Iterable[tuple[int, int]],
                      data: bytes) -> None:
        """Write ``data`` across a physical scatter/gather list."""
        offset = 0
        for paddr, length in segments:
            self.write(paddr, data[offset:offset + length])
            offset += length
        if offset != len(data):
            raise ValueError(
                f"scatter list covers {offset} bytes, data has {len(data)}")

    def _check(self, paddr: int, length: int) -> None:
        if paddr < 0 or length < 0 or paddr + length > self.size:
            raise ValueError(
                f"physical access [{paddr}, {paddr + length}) outside "
                f"memory of size {self.size}")


class FrameAllocator:
    """Hands out page frames of a :class:`PhysicalMemory`.

    Frames are recycled lowest-index-first so allocation is
    deterministic; double-free is an error because it would silently
    alias two virtual pages onto one frame.
    """

    def __init__(self, memory: PhysicalMemory):
        self.memory = memory
        self.page_size = memory.page_size
        self.n_frames = memory.size // memory.page_size
        self._free: list[int] = list(range(self.n_frames - 1, -1, -1))
        self._allocated: set[int] = set()

    @property
    def free_frames(self) -> int:
        return len(self._free)

    def alloc(self) -> int:
        """Allocate one frame; returns the frame number."""
        if not self._free:
            raise OutOfMemoryError(
                f"all {self.n_frames} page frames are allocated")
        frame = self._free.pop()
        self._allocated.add(frame)
        return frame

    def alloc_many(self, count: int) -> list[int]:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count > len(self._free):
            raise OutOfMemoryError(
                f"requested {count} frames, only {len(self._free)} free")
        return [self.alloc() for _ in range(count)]

    def free(self, frame: int) -> None:
        if frame not in self._allocated:
            raise ValueError(f"frame {frame} is not allocated")
        self._allocated.remove(frame)
        self._free.append(frame)
        # Keep the free list sorted descending so .pop() returns the
        # lowest frame; makes layouts reproducible across runs.
        self._free.sort(reverse=True)

    def frame_paddr(self, frame: int) -> int:
        if not 0 <= frame < self.n_frames:
            raise ValueError(f"frame {frame} out of range")
        return frame * self.page_size
