"""Host physical memory: a flat byte store plus a page-frame allocator.

The DAWNING-3000 nodes carry "large capacity of memory"; the paper's
whole argument for kernel-side address translation is that NIC-resident
translation caches stop scaling there.  We therefore model memory
page-accurately: virtual address spaces (:mod:`repro.kernel.vm`) map
onto page frames handed out by :class:`FrameAllocator`, and DMA works
on *physical* segment lists exactly as the BCL kernel module produces
them.
"""

from __future__ import annotations

import heapq
from typing import Iterable

__all__ = ["PhysicalMemory", "FrameAllocator", "OutOfMemoryError"]


class OutOfMemoryError(MemoryError):
    """No free page frames left."""


class PhysicalMemory:
    """Byte-addressable physical memory, materialized page by page.

    Pages spring into existence on first write; untouched pages read as
    zeros — byte-identical to a flat zero-filled store, but a
    thousand-node cluster no longer commits ``n_nodes * size`` of host
    RAM up front (64 nodes of the former flat 64 MB bytearrays already
    cost seconds of zeroing and gigabytes of residency).
    """

    def __init__(self, size: int, page_size: int = 4096):
        if size <= 0 or size % page_size:
            raise ValueError(
                f"memory size {size} must be a positive multiple of the "
                f"page size {page_size}")
        self.size = size
        self.page_size = page_size
        self._pages: dict[int, bytearray] = {}

    def _page(self, index: int) -> bytearray:
        page = self._pages.get(index)
        if page is None:
            page = self._pages[index] = bytearray(self.page_size)
        return page

    def read(self, paddr: int, length: int) -> bytes:
        self._check(paddr, length)
        ps = self.page_size
        if length and paddr // ps == (paddr + length - 1) // ps:
            # Fast path: within one page.
            page = self._pages.get(paddr // ps)
            if page is None:
                return bytes(length)
            offset = paddr % ps
            return bytes(page[offset:offset + length])
        out = bytearray(length)
        pos = 0
        while pos < length:
            index, offset = divmod(paddr + pos, ps)
            take = min(ps - offset, length - pos)
            page = self._pages.get(index)
            if page is not None:
                out[pos:pos + take] = page[offset:offset + take]
            pos += take
        return bytes(out)

    def write(self, paddr: int, data: bytes) -> None:
        self._check(paddr, len(data))
        ps = self.page_size
        length = len(data)
        pos = 0
        while pos < length:
            index, offset = divmod(paddr + pos, ps)
            take = min(ps - offset, length - pos)
            self._page(index)[offset:offset + take] = data[pos:pos + take]
            pos += take

    def read_gather(self, segments: Iterable[tuple[int, int]]) -> bytes:
        """Read a physical scatter/gather list into one buffer."""
        return b"".join(self.read(paddr, length) for paddr, length in segments)

    def write_scatter(self, segments: Iterable[tuple[int, int]],
                      data: bytes) -> None:
        """Write ``data`` across a physical scatter/gather list."""
        offset = 0
        for paddr, length in segments:
            self.write(paddr, data[offset:offset + length])
            offset += length
        if offset != len(data):
            raise ValueError(
                f"scatter list covers {offset} bytes, data has {len(data)}")

    def _check(self, paddr: int, length: int) -> None:
        if paddr < 0 or length < 0 or paddr + length > self.size:
            raise ValueError(
                f"physical access [{paddr}, {paddr + length}) outside "
                f"memory of size {self.size}")


class FrameAllocator:
    """Hands out page frames of a :class:`PhysicalMemory`.

    Frames are recycled lowest-index-first so allocation is
    deterministic; double-free is an error because it would silently
    alias two virtual pages onto one frame.
    """

    def __init__(self, memory: PhysicalMemory):
        self.memory = memory
        self.page_size = memory.page_size
        self.n_frames = memory.size // memory.page_size
        # Never-allocated frames live behind a bump pointer; freed ones
        # in a min-heap.  alloc() always returns the lowest free frame
        # (layouts reproducible across runs), exactly like the former
        # pre-built descending free list, without O(n_frames) setup.
        self._next_fresh = 0
        self._recycled: list[int] = []
        self._allocated: set[int] = set()

    @property
    def free_frames(self) -> int:
        return self.n_frames - len(self._allocated)

    def alloc(self) -> int:
        """Allocate one frame (the lowest free); returns its number."""
        if self._recycled:
            frame = heapq.heappop(self._recycled)
        elif self._next_fresh < self.n_frames:
            frame = self._next_fresh
            self._next_fresh += 1
        else:
            raise OutOfMemoryError(
                f"all {self.n_frames} page frames are allocated")
        self._allocated.add(frame)
        return frame

    def alloc_many(self, count: int) -> list[int]:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count > self.free_frames:
            raise OutOfMemoryError(
                f"requested {count} frames, only {self.free_frames} free")
        return [self.alloc() for _ in range(count)]

    def free(self, frame: int) -> None:
        if frame not in self._allocated:
            raise ValueError(f"frame {frame} is not allocated")
        self._allocated.remove(frame)
        heapq.heappush(self._recycled, frame)

    def frame_paddr(self, frame: int) -> int:
        if not 0 <= frame < self.n_frames:
            raise ValueError(f"frame {frame} out of range")
        return frame * self.page_size
