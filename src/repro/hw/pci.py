"""PCI bus: programmed I/O and DMA engines.

The paper's testbed has strikingly slow PIO (0.24 us per word written,
0.98 us per word read) and this dominates the send path — "filling
sending request consumed more than half of the time".  The bus is a
shared resource: PIO and DMA bursts arbitrate for it, which reproduces
the observation that "I/O device will have a low performance when lots
of I/O accesses occur during a DMA operation".
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.config import CostModel
from repro.hw.cpu import Cpu
from repro.sim import Environment, Resource, Tracer, us
from repro.sim.time import transfer_time_ns

__all__ = ["PciBus"]


#: DMA burst granularity: the bus is released between bursts so PIO can
#: interleave (at a latency cost) with a long-running DMA.
DMA_BURST_BYTES = 4096


class PciBus:
    """One node's I/O bus, shared by the host CPUs and the NIC."""

    def __init__(self, env: Environment, cfg: CostModel, name: str,
                 tracer: Optional[Tracer] = None):
        self.env = env
        self.cfg = cfg
        self.name = name
        self.tracer = tracer
        self._bus = Resource(env, capacity=1)
        self.pio_words_written = 0
        self.pio_words_read = 0
        self.dma_bytes = 0

    # ------------------------------------------------------------- PIO
    def pio_write(self, cpu: Cpu, words: int, *, stage: str = "pio_write",
                  message_id: Optional[int] = None) -> Generator:
        """CPU writes ``words`` 32-bit words to NIC memory/registers."""
        yield from self._pio(cpu, words, self.cfg.pio_write_word_us, stage,
                             message_id)
        self.pio_words_written += words

    def pio_read(self, cpu: Cpu, words: int, *, stage: str = "pio_read",
                 message_id: Optional[int] = None) -> Generator:
        """CPU reads ``words`` 32-bit words from NIC memory/registers."""
        yield from self._pio(cpu, words, self.cfg.pio_read_word_us, stage,
                             message_id)
        self.pio_words_read += words

    def _pio(self, cpu: Cpu, words: int, per_word_us: float, stage: str,
             message_id: Optional[int]) -> Generator:
        if words < 0:
            raise ValueError(f"negative word count {words}")
        if words == 0:
            return
        duration = us(words * per_word_us)
        # PIO occupies the issuing CPU *and* the bus for its duration.
        with cpu._resource.request() as cpu_req:
            yield cpu_req
            with self._bus.request() as bus_req:
                yield bus_req
                start = self.env.now
                yield self.env.sleep(duration)
                cpu.busy_ns += duration
                if self.tracer is not None:
                    self.tracer.record(start, self.env.now, "pio", stage,
                                       self.name, message_id, words=words)

    # ------------------------------------------------------------- DMA
    def dma(self, nbytes: int, *, stage: str = "dma",
            message_id: Optional[int] = None,
            setup: bool = True) -> Generator:
        """One DMA transfer across the bus (either direction).

        Charges the engine setup cost once, then moves the payload in
        bursts of :data:`DMA_BURST_BYTES`, releasing the bus between
        bursts so concurrent PIO is delayed rather than starved.

        With ``cfg.dma_burst_coalesce`` the whole transfer is one bus
        hold and one timer: total duration is preserved exactly (the
        per-burst integer rounding is reproduced burst by burst), so an
        uncontended run is time-identical; only arbitration granularity
        under contention coarsens.  That turns a 64 KB transfer from 16
        scheduled events into 1.
        """
        if nbytes < 0:
            raise ValueError(f"negative DMA length {nbytes}")
        start = self.env.now
        if setup:
            yield self.env.sleep(us(self.cfg.dma_setup_us))
        if self.cfg.dma_burst_coalesce:
            if nbytes > 0:
                n_full, tail = divmod(nbytes, DMA_BURST_BYTES)
                total = n_full * transfer_time_ns(DMA_BURST_BYTES,
                                                  self.cfg.dma_mb_s)
                if tail:
                    total += transfer_time_ns(tail, self.cfg.dma_mb_s)
                with self._bus.request() as req:
                    yield req
                    yield self.env.sleep(total)
        else:
            remaining = nbytes
            while remaining > 0:
                burst = min(remaining, DMA_BURST_BYTES)
                with self._bus.request() as req:
                    yield req
                    yield self.env.sleep(
                        transfer_time_ns(burst, self.cfg.dma_mb_s))
                remaining -= burst
        self.dma_bytes += nbytes
        if self.tracer is not None:
            self.tracer.record(start, self.env.now, "dma", stage, self.name,
                               message_id, nbytes=nbytes)
