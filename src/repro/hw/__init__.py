"""Hardware substrate: memory, CPUs, PCI, NICs, links, switches, nodes.

Everything here moves *real bytes* through the simulation — payloads
live in :class:`~repro.hw.memory.PhysicalMemory`, DMA engines copy them
into NIC staging buffers, packets carry them across links — so the test
suite can assert end-to-end payload integrity, CRC protection, and
scatter/gather correctness rather than only timing.
"""

from repro.hw.cpu import Cpu
from repro.hw.memory import FrameAllocator, OutOfMemoryError, PhysicalMemory
from repro.hw.pci import PciBus
from repro.hw.link import Link, LinkEndpoint
from repro.hw.switch import Switch
from repro.hw.network import Network, build_network
from repro.hw.nic import Nic
from repro.hw.node import Node, UserProcess

__all__ = [
    "Cpu",
    "FrameAllocator",
    "Link",
    "LinkEndpoint",
    "Network",
    "Nic",
    "Node",
    "OutOfMemoryError",
    "PciBus",
    "PhysicalMemory",
    "Switch",
    "UserProcess",
    "build_network",
]
