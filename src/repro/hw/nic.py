"""The network interface card.

A :class:`Nic` bundles the LANai-class firmware processor (the MCP
engines from :mod:`repro.firmware.mcp`), its local SRAM (modelled as a
bounded number of staging buffers plus a bounded send-request ring),
the wire port, and the per-port receive-side tables (system-channel
buffer pools, posted normal-channel descriptors, open-channel bindings,
RMA landing tokens).

Depending on the architecture under test, the card's tables are filled
from kernel space over PIO (semi-user-level BCL, kernel-level baseline)
or directly from user space (user-level baseline); the card itself is
the same hardware either way, which is exactly the paper's experimental
setting — all three architectures ran on the same Myrinet.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.firmware.descriptors import (
    BoundBuffer,
    PoolBuffer,
    RecvDescriptor,
    SendRequest,
)
from repro.config import CostModel
from repro.firmware.packet import ChannelKind
from repro.hw.link import LinkEndpoint
from repro.hw.pci import PciBus
from repro.sim import Environment, Store, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bcl.events import CompletionQueue
    from repro.hw.network import Network
    from repro.kernel.vm import AddressSpace

__all__ = ["Nic", "NicPortState", "LandingZone"]

_landing_tokens = itertools.count(1)


@dataclass
class LandingZone:
    """Destination of an outstanding RMA read, kept on the *requester's* NIC."""

    token: int
    segments: list[tuple[int, int]]
    length: int
    port: int
    message_id: int
    received: int = 0


@dataclass
class NicPortState:
    """Receive-side state the NIC keeps for one BCL port."""

    port_id: int
    owner_pid: int
    #: completion queues in the owner's user space
    recv_queue: "CompletionQueue"
    send_queue: "CompletionQueue"
    #: system channel: FIFO pool of pre-pinned small-message buffers
    system_pool_free: deque[PoolBuffer] = field(default_factory=deque)
    system_pool_all: dict[int, PoolBuffer] = field(default_factory=dict)
    system_dropped: int = 0
    #: normal channels: posted rendezvous receive descriptors
    normal: dict[int, Optional[RecvDescriptor]] = field(default_factory=dict)
    unready_drops: int = 0
    #: open channels: RMA-able bound buffers
    open_channels: dict[int, BoundBuffer] = field(default_factory=dict)
    #: outstanding RMA-read landing zones, by token
    landing: dict[int, LandingZone] = field(default_factory=dict)
    #: "interrupt" for the kernel-level baseline, "event" for BCL-style
    notify_mode: str = "event"
    #: kernel-level baseline: callback run inside the recv interrupt
    interrupt_callback: Optional[Callable[[object], None]] = None
    #: reassembly cursor per in-flight message (message_id -> bytes seen)
    reassembly: dict[int, int] = field(default_factory=dict)

    def return_pool_buffer(self, index: int) -> None:
        """Recycle a system-channel buffer after the receiver consumed it."""
        buf = self.system_pool_all.get(index)
        if buf is None:
            raise KeyError(f"port {self.port_id}: unknown pool buffer {index}")
        if buf in self.system_pool_free:
            raise ValueError(
                f"port {self.port_id}: pool buffer {index} double-returned")
        self.system_pool_free.append(buf)


class Nic:
    """One node's network interface card."""

    def __init__(self, env: Environment, cfg: CostModel, node_id: int,
                 pci: PciBus, tracer: Optional[Tracer] = None,
                 translation_mode: str = "physical"):
        if translation_mode not in ("physical", "virtual"):
            raise ValueError(f"unknown translation mode {translation_mode!r}")
        self.env = env
        self.cfg = cfg
        self.node_id = node_id
        self.name = f"node{node_id}.nic"
        self.pci = pci
        self.tracer = tracer
        #: "physical": descriptors carry pre-translated segments (BCL,
        #: kernel-level).  "virtual": descriptors carry (pid, vaddr) and
        #: the NIC translates through its TLB (user-level baseline).
        self.translation_mode = translation_mode
        self.send_ring: Store = Store(env, capacity=cfg.send_ring_entries)
        self.rx_packets: Store = Store(env)
        self.ports: dict[int, NicPortState] = {}
        #: page tables the NIC may walk on a TLB miss (user-level mode)
        self.spaces: dict[int, "AddressSpace"] = {}
        self.endpoint: Optional[LinkEndpoint] = None
        self.network: Optional["Network"] = None
        #: optional fault adjudicator on the receive path (packets lost
        #: or mangled inside the card, after the wire; see repro.faults)
        self.rx_injector = None
        self.mcp = None          # set by attach_mcp
        self.interrupt_controller = None  # set by the Node
        self.host_memory = None  # set by the Node

    # ------------------------------------------------------------ wiring
    def attach_network(self, network: "Network") -> None:
        self.network = network
        self.endpoint = network.nic_endpoints[self.node_id]
        self.endpoint.attach(self._on_packet)

    def attach_mcp(self, mcp) -> None:
        if self.mcp is not None:
            raise RuntimeError(f"{self.name} already has an MCP")
        self.mcp = mcp

    def _on_packet(self, _endpoint: LinkEndpoint, packet) -> None:
        if self.rx_injector is not None:
            for extra_delay, out_packet in self.rx_injector.adjudicate(packet):
                if extra_delay:
                    self.env.process(
                        self._rx_delayed(out_packet, extra_delay),
                        name=f"{self.name}.rx_delayed")
                else:
                    self.rx_packets.try_put(out_packet)
            return
        self.rx_packets.try_put(packet)

    def _rx_delayed(self, packet, delay_ns: int):
        yield self.env.sleep(delay_ns)
        self.rx_packets.try_put(packet)

    # ----------------------------------------------------------- control
    def create_port(self, state: NicPortState) -> None:
        if state.port_id in self.ports:
            raise ValueError(f"{self.name}: port {state.port_id} exists")
        self.ports[state.port_id] = state

    def destroy_port(self, port_id: int) -> NicPortState:
        try:
            return self.ports.pop(port_id)
        except KeyError:
            raise ValueError(f"{self.name}: no port {port_id}") from None

    def port_state(self, port_id: int) -> NicPortState:
        try:
            return self.ports[port_id]
        except KeyError:
            raise ValueError(f"{self.name}: no port {port_id}") from None

    def register_space(self, pid: int, space: "AddressSpace") -> None:
        self.spaces[pid] = space

    def fetch_translation(self, pid: int, vpage: int) -> int:
        """Page-table walk performed by the NIC on a TLB miss."""
        try:
            space = self.spaces[pid]
        except KeyError:
            raise ValueError(f"{self.name}: unknown pid {pid}") from None
        return space.frame_of(vpage)

    def post_send(self, request: SendRequest):
        """Enqueue a send request; blocks (backpressure) when the ring
        is full.  Returns the store-put event."""
        return self.send_ring.put(request)

    @property
    def ring_occupancy(self) -> int:
        return len(self.send_ring)

    def register_metrics(self, registry) -> None:
        """Expose this card's table state to a telemetry registry."""
        nic = str(self.node_id)
        registry.register_callback(
            "repro_nic_open_ports", lambda: len(self.ports),
            "BCL ports currently open on the card", kind="gauge", nic=nic)
        registry.register_callback(
            "repro_nic_send_ring_occupancy", lambda: self.ring_occupancy,
            "send requests queued in the card's SRQ ring",
            kind="gauge", nic=nic)
        registry.register_callback(
            "repro_nic_unready_drops_total",
            lambda: sum(p.unready_drops for p in self.ports.values()),
            "arrivals dropped because no receive channel was ready",
            kind="counter", nic=nic)
        registry.register_callback(
            "repro_nic_system_pool_drops_total",
            lambda: sum(p.system_dropped for p in self.ports.values()),
            "system-channel arrivals dropped for lack of a pool buffer",
            kind="counter", nic=nic)
