"""An SMP node: CPUs, memory, PCI bus, NIC, and its user processes.

DAWNING-3000 nodes are 4-way Power3 SMPs; each simulated node carries
``cfg.n_cpus_per_node`` CPUs, one physical memory with a frame
allocator, one PCI bus, and (usually) one NIC.  The kernel is attached
by the composition root (:mod:`repro.cluster`) after construction, so
this module stays free of upward dependencies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.config import CostModel
from repro.hw.cpu import Cpu
from repro.hw.memory import FrameAllocator, PhysicalMemory
from repro.hw.nic import Nic
from repro.hw.pci import PciBus
from repro.sim import Environment, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.kernel.vm import AddressSpace

__all__ = ["Node", "UserProcess"]

#: default per-node physical memory; small by DAWNING standards but the
#: frame allocator only needs to cover what the workloads actually touch
DEFAULT_MEMORY_BYTES = 64 << 20


class UserProcess:
    """A user process: an address space plus a CPU affinity."""

    def __init__(self, pid: int, node: "Node", cpu: Cpu,
                 space: "AddressSpace"):
        self.pid = pid
        self.node = node
        self.cpu = cpu
        self.space = space

    def __repr__(self) -> str:  # pragma: no cover
        return f"<UserProcess pid={self.pid} node={self.node.node_id}>"

    # Convenience wrappers -------------------------------------------------
    def alloc(self, nbytes: int) -> int:
        return self.space.alloc(nbytes)

    def write(self, vaddr: int, data: bytes) -> None:
        self.space.write(vaddr, data)

    def read(self, vaddr: int, nbytes: int) -> bytes:
        return self.space.read(vaddr, nbytes)


class Node:
    """One cluster node."""

    def __init__(self, env: Environment, cfg: CostModel, node_id: int,
                 tracer: Optional[Tracer] = None,
                 memory_bytes: int = DEFAULT_MEMORY_BYTES,
                 with_nic: bool = True,
                 nic_translation_mode: str = "physical"):
        self.env = env
        self.cfg = cfg
        self.node_id = node_id
        self.tracer = tracer
        self.name = f"node{node_id}"
        self.cpus = [Cpu(env, cfg, f"{self.name}.cpu{i}", tracer)
                     for i in range(cfg.n_cpus_per_node)]
        self.memory = PhysicalMemory(memory_bytes, cfg.page_size)
        self.allocator = FrameAllocator(self.memory)
        self.pci = PciBus(env, cfg, f"{self.name}.pci", tracer)
        self.nic: Optional[Nic] = None
        if with_nic:
            self.nic = Nic(env, cfg, node_id, self.pci, tracer,
                           translation_mode=nic_translation_mode)
            self.nic.host_memory = self.memory
        self.kernel: Optional["Kernel"] = None  # attached by the cluster
        self.processes: dict[int, UserProcess] = {}
        #: user-space BclPort objects by port id (intranode directory)
        self.bcl_ports: dict[int, object] = {}
        self._next_cpu = 0

    def spawn_process(self, pid: Optional[int] = None,
                      cpu_index: Optional[int] = None) -> UserProcess:
        """Create a user process, round-robining CPU affinity by default."""
        if pid is None:
            pid = 1000 * (self.node_id + 1) + len(self.processes)
        if pid in self.processes:
            raise ValueError(f"{self.name}: pid {pid} already exists")
        if cpu_index is None:
            cpu_index = self._next_cpu
            self._next_cpu = (self._next_cpu + 1) % len(self.cpus)
        # Imported here: kernel.vm imports hw.memory, so a module-level
        # import would be circular through the package __init__ files.
        from repro.kernel.vm import AddressSpace
        space = AddressSpace(self.allocator, pid)
        proc = UserProcess(pid, self, self.cpus[cpu_index], space)
        self.processes[pid] = proc
        if self.nic is not None:
            self.nic.register_space(pid, space)
        return proc

    def exit_process(self, pid: int) -> None:
        """Tear down a process: ports, pins, shm rings, NIC state."""
        proc = self.processes.pop(pid, None)
        if proc is None:
            raise ValueError(f"{self.name}: no pid {pid}")
        if self.nic is not None:
            # Destroy any NIC ports the process still owns (abnormal
            # exit: the kernel reclaims what close_port would have).
            for port_id in [p for p, s in self.nic.ports.items()
                            if s.owner_pid == pid]:
                state = self.nic.ports[port_id]
                # Release everything close_port would have unpinned:
                # pool buffers are pinned directly in the address space
                # (not via the pin-down table), so evict_pid below
                # cannot reach them — skipping this leaks the pins.
                for buf in state.system_pool_all.values():
                    for vpage in proc.space.pages_of(buf.vaddr, buf.size):
                        proc.space.unpin_page(vpage)
                for descriptor in state.normal.values():
                    if descriptor is not None:
                        for vpage in descriptor.pinned_pages:
                            proc.space.unpin_page(vpage)
                for bound in state.open_channels.values():
                    for vpage in bound.pinned_pages:
                        proc.space.unpin_page(vpage)
                self.nic.destroy_port(port_id)
                self.bcl_ports.pop(port_id, None)
                module = getattr(self.kernel, "bcl_module", None) \
                    if self.kernel else None
                if module is not None:
                    module._port_of_pid.pop(pid, None)
        if self.kernel is not None:
            self.kernel.pindown.evict_pid(pid)
            self.kernel.shm.destroy_pid(pid)
        if self.nic is not None:
            self.nic.spaces.pop(pid, None)
            if self.nic.mcp is not None:
                self.nic.mcp.tlb.invalidate(pid)
        audit = getattr(self.env, "_audit", None)
        if audit is not None:
            audit.on_process_exit(self, proc)
