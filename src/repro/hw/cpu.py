"""Host CPU model.

A :class:`Cpu` is a serial execution resource: at most one software
activity (user library code, kernel code entered via a trap, interrupt
handler) runs on it at a time.  Costs are charged in microseconds and
scaled by the configured clock frequency relative to the calibration
frequency, which implements the paper's "a faster CPU will reduce these
overheads" observation as a first-class ablation knob.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.config import CostModel
from repro.sim import Environment, Resource, Tracer, us

__all__ = ["Cpu"]


class Cpu:
    """One processor of an SMP node."""

    def __init__(self, env: Environment, cfg: CostModel, name: str,
                 tracer: Optional[Tracer] = None):
        self.env = env
        self.cfg = cfg
        self.name = name
        self.tracer = tracer
        self._resource = Resource(env, capacity=1)
        self.busy_ns = 0  # accumulated execution time, for utilisation stats

    def execute(self, cost_us: float, *, category: str = "cpu",
                stage: str = "work", message_id: Optional[int] = None,
                scale: bool = True) -> Generator:
        """Run for ``cost_us`` (scaled) microseconds of CPU time.

        Acquires the CPU exclusively for the duration, so concurrent
        activities on the same processor serialise — e.g. an interrupt
        handler delays the user process it preempts in wall-clock terms.
        """
        if cost_us < 0:
            raise ValueError(f"negative CPU cost {cost_us}")
        duration = us(self.cfg.scaled_host_us(cost_us) if scale else cost_us)
        with self._resource.request() as req:
            yield req
            start = self.env.now
            yield self.env.sleep(duration)
            self.busy_ns += duration
            if self.tracer is not None:
                self.tracer.record(start, self.env.now, category, stage,
                                   self.name, message_id)

    @property
    def utilisation_ns(self) -> int:
        return self.busy_ns
