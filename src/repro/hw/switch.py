"""Cut-through crossbar switch (Myrinet M2M-OCT-SW8 class).

Source routing: every arriving packet's route head names the output
port; the switch strips it and forwards after the cut-through
fall-through latency.  Each input port runs its own forwarding process,
so distinct input->output pairs proceed in parallel like a crossbar;
two inputs targeting the same output contend on that output link's
serialization window (handled by :class:`~repro.hw.link.Link`).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.config import CostModel
from repro.firmware.packet import Packet
from repro.hw.link import LinkEndpoint
from repro.sim import Environment, Store, us

__all__ = ["Switch"]


class Switch:
    """An ``n_ports``-port source-routed cut-through switch."""

    def __init__(self, env: Environment, cfg: CostModel, name: str,
                 n_ports: int = 8):
        if n_ports < 2:
            raise ValueError(f"a switch needs >= 2 ports, got {n_ports}")
        self.env = env
        self.cfg = cfg
        self.name = name
        self.n_ports = n_ports
        self._endpoints: list[Optional[LinkEndpoint]] = [None] * n_ports
        self._inboxes: list[Store] = [Store(env) for _ in range(n_ports)]
        self.packets_forwarded = 0
        self.route_errors = 0
        for port in range(n_ports):
            env.process(self._forwarder(port), name=f"{name}.port{port}")

    def connect(self, port: int, endpoint: LinkEndpoint) -> None:
        """Attach a link endpoint to ``port``."""
        if not 0 <= port < self.n_ports:
            raise ValueError(f"{self.name} has no port {port}")
        if self._endpoints[port] is not None:
            raise RuntimeError(f"{self.name} port {port} already connected")
        self._endpoints[port] = endpoint
        inbox = self._inboxes[port]
        endpoint.attach(lambda _ep, pkt, _inbox=inbox: _inbox.try_put(pkt))

    def _forwarder(self, port: int) -> Generator:
        inbox = self._inboxes[port]
        latency = us(self.cfg.switch_latency_us)
        while True:
            packet: Packet = yield inbox.get()
            yield self.env.sleep(latency)
            try:
                out_port, forwarded = packet.hop()
            except ValueError:
                self.route_errors += 1
                continue
            endpoint = self._endpoints[out_port] \
                if 0 <= out_port < self.n_ports else None
            if endpoint is None:
                # Route names a dead port: the packet is lost in the
                # fabric; the reliability layer will retransmit.
                self.route_errors += 1
                continue
            yield endpoint.send(forwarded)
            self.packets_forwarded += 1
