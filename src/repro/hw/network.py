"""Topology construction and source-route computation.

DAWNING-3000's system area network is either Myrinet (8-port switches)
or the custom nwrc 2-D mesh; both are source-routed cut-through
fabrics.  :func:`build_network` assembles NIC-facing link endpoints,
switches and inter-switch links for several topologies and precomputes
the source route (sequence of switch output ports) for every ordered
node pair, using :mod:`networkx` shortest paths over the fabric graph.

Topologies:

* ``single_switch`` — all nodes on one crossbar (grown to the needed
  radix); the calibration topology, 2 links + 1 switch per path.
* ``switch_tree`` — 8-port leaf switches (7 hosts + 1 uplink) under a
  root switch, like a small DAWNING Myrinet installation.
* ``mesh2d`` — a 2-D grid of 5-port routing chips (N/S/E/W/host) with
  XY dimension-order routing, standing in for the nwrc mesh.
* ``fat_tree`` — a k-ary 3-level Clos (k pods of k/2 edge + k/2
  aggregation switches, (k/2)^2 cores; up to k^3/4 hosts) with
  source-routed up/down paths and deterministic-seeded ECMP selection
  among the equal-cost uplinks.  The scale-out fabric: thousand-rank
  clusters at 16-port radix.

Every route is validated against switch radix and physical
connectivity at build time (``cfg.strict_routes``), so a topology
builder emitting an out-of-radix or dead port fails fast instead of
silently dropping packets at forwarding time.
"""

from __future__ import annotations

import math
import struct
import zlib
from typing import Callable, Optional

import networkx as nx

from repro.config import CostModel
from repro.firmware.packet import Packet
from repro.hw.link import Link, LinkEndpoint
from repro.hw.switch import Switch
from repro.sim import Environment

__all__ = ["Network", "build_network"]

FaultInjector = Callable[[Packet], Optional[Packet]]


class Network:
    """A built fabric: per-node attach endpoints plus a route table."""

    def __init__(self, env: Environment, cfg: CostModel, n_nodes: int,
                 topology: str):
        self.env = env
        self.cfg = cfg
        self.n_nodes = n_nodes
        self.topology = topology
        self.switches: list[Switch] = []
        self.links: list[Link] = []
        #: endpoint the node's NIC transmits/receives on, per node id
        self.nic_endpoints: dict[int, LinkEndpoint] = {}
        self._routes: dict[tuple[int, int], tuple[int, ...]] = {}
        self.graph = nx.Graph()
        #: physical wiring: (switch name, port) -> ("sw", name) | ("host", n)
        self.port_map: dict[tuple[str, int], tuple] = {}
        #: node id -> (switch name, port) its NIC link lands on
        self.host_attach: dict[int, tuple[str, int]] = {}
        #: switch name -> tree level (fat_tree: 0=edge 1=agg 2=core)
        self.switch_level: dict[str, int] = {}
        #: topology parameters (fat_tree: k, pods, ...)
        self.meta: dict = {}
        self._switch_by_name: dict[str, Switch] = {}

    def register_metrics(self, registry) -> None:
        """Register every link's and switch's tallies (observation only)."""
        for link in self.links:
            link.register_metrics(registry)
        for switch in self.switches:
            registry.register_callback(
                "repro_switch_packets_forwarded_total",
                lambda sw=switch: sw.packets_forwarded,
                kind="counter", switch=switch.name)
            registry.register_callback(
                "repro_switch_route_errors_total",
                lambda sw=switch: sw.route_errors,
                kind="counter", switch=switch.name)

    def route(self, src: int, dst: int) -> tuple[int, ...]:
        """Source route (switch output ports) from node src to node dst."""
        if src == dst:
            raise ValueError(f"no network route from node {src} to itself")
        try:
            return self._routes[(src, dst)]
        except KeyError:
            raise ValueError(f"no route from node {src} to node {dst}") from None

    def hops(self, src: int, dst: int) -> int:
        """Number of switches on the path."""
        return len(self.route(src, dst))

    def walk_route(self, src: int, dst: int) -> list[tuple[str, int]]:
        """The (switch name, output port) sequence a packet traverses.

        Raises :class:`ValueError` if the route leaves the wired fabric
        at any hop or does not terminate at ``dst``'s host port — the
        strict-mode check behind :meth:`validate_routes`.
        """
        route = self.route(src, dst)
        here = self.host_attach.get(src)
        if here is None:
            raise ValueError(f"node {src} is not attached to the fabric")
        sw_name = here[0]
        steps: list[tuple[str, int]] = []
        for hop, port in enumerate(route):
            sw = self._switch_by_name[sw_name]
            if not 0 <= port < sw.n_ports:
                raise ValueError(
                    f"route {src}->{dst} hop {hop}: port {port} is outside "
                    f"{sw_name}'s radix {sw.n_ports}")
            target = self.port_map.get((sw_name, port))
            if target is None:
                raise ValueError(
                    f"route {src}->{dst} hop {hop}: {sw_name} port {port} "
                    f"is not wired")
            steps.append((sw_name, port))
            if target[0] == "host":
                if hop != len(route) - 1 or target[1] != dst:
                    raise ValueError(
                        f"route {src}->{dst} hop {hop}: ejects at host "
                        f"{target[1]} with {len(route) - 1 - hop} port(s) "
                        f"left")
                return steps
            sw_name = target[1]
        raise ValueError(
            f"route {src}->{dst} ends at switch {sw_name}, not at node "
            f"{dst}'s host port")

    def validate_routes(self) -> None:
        """Walk every precomputed route through the wired fabric.

        Checks, for each ordered ``(src, dst)`` pair: every port index
        is within the radix of the switch it is consumed at, every hop
        lands on a physically connected link, and the final hop ejects
        at ``dst``'s host port.  Raises :class:`ValueError` naming the
        first offending route — topology-builder bugs fail at
        :func:`build_network` time instead of as silent
        ``Switch.route_errors`` drops.
        """
        for src, dst in self._routes:
            self.walk_route(src, dst)

    # -- construction helpers (used by build_network) -------------------
    def _add_link(self, name: str,
                  fault_injector: Optional[FaultInjector] = None) -> Link:
        link = Link(self.env, self.cfg, name, fault_injector)
        self.links.append(link)
        return link

    def _add_switch(self, name: str, n_ports: int, level: int = 0) -> Switch:
        sw = Switch(self.env, self.cfg, name, n_ports)
        self.switches.append(sw)
        self._switch_by_name[name] = sw
        self.switch_level[name] = level
        return sw

    def _compute_routes_from_graph(
            self, port_of: dict[tuple[str, int], dict[tuple[str, int], int]]
    ) -> None:
        """Fill the route table from ``self.graph`` shortest paths.

        ``port_of[switch_vertex][neighbor_vertex]`` is the switch port
        facing that neighbor.
        """
        for src in range(self.n_nodes):
            paths = nx.single_source_shortest_path(self.graph, ("host", src))
            for dst in range(self.n_nodes):
                if dst == src:
                    continue
                path = paths.get(("host", dst))
                if path is None:
                    raise ValueError(
                        f"topology {self.topology!r} leaves node {dst} "
                        f"unreachable from node {src}")
                ports = []
                for i in range(1, len(path) - 1):
                    vertex = path[i]
                    ports.append(port_of[vertex][path[i + 1]])
                self._routes[(src, dst)] = tuple(ports)


def build_network(env: Environment, cfg: CostModel, n_nodes: int,
                  topology: str = "single_switch",
                  fault_injector: Optional[FaultInjector] = None) -> Network:
    """Build a fabric for ``n_nodes`` nodes.

    ``fault_injector``, if given, is installed on every link (packet ->
    packet | corrupted packet | None-to-drop); the reliability tests use
    it to exercise retransmission.
    """
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    net = Network(env, cfg, n_nodes, topology)
    if topology == "single_switch":
        _build_single_switch(net, fault_injector)
    elif topology == "switch_tree":
        _build_switch_tree(net, fault_injector)
    elif topology == "mesh2d":
        _build_mesh2d(net, fault_injector)
    elif topology == "fat_tree":
        _build_fat_tree(net, fault_injector)
    else:
        raise ValueError(f"unknown topology {topology!r}")
    if cfg.strict_routes:
        net.validate_routes()
    return net


def _host_link(net: Network, node: int, sw: Switch, port: int,
               fault_injector: Optional[FaultInjector]) -> None:
    link = net._add_link(f"link.h{node}-{sw.name}p{port}", fault_injector)
    net.nic_endpoints[node] = link.a
    sw.connect(port, link.b)
    net.graph.add_edge(("host", node), ("sw", sw.name))
    net.port_map[(sw.name, port)] = ("host", node)
    net.host_attach[node] = (sw.name, port)


def _switch_link(net: Network, sw_a: Switch, port_a: int, sw_b: Switch,
                 port_b: int, fault_injector: Optional[FaultInjector],
                 port_of: dict) -> None:
    link = net._add_link(f"link.{sw_a.name}p{port_a}-{sw_b.name}p{port_b}",
                         fault_injector)
    sw_a.connect(port_a, link.a)
    sw_b.connect(port_b, link.b)
    net.graph.add_edge(("sw", sw_a.name), ("sw", sw_b.name))
    port_of[("sw", sw_a.name)][("sw", sw_b.name)] = port_a
    port_of[("sw", sw_b.name)][("sw", sw_a.name)] = port_b
    net.port_map[(sw_a.name, port_a)] = ("sw", sw_b.name)
    net.port_map[(sw_b.name, port_b)] = ("sw", sw_a.name)


def _build_single_switch(net: Network,
                         fault_injector: Optional[FaultInjector]) -> None:
    n = net.n_nodes
    sw = net._add_switch("sw0", n_ports=max(2, n))
    port_of: dict = {("sw", "sw0"): {}}
    for node in range(n):
        _host_link(net, node, sw, node, fault_injector)
        port_of[("sw", "sw0")][("host", node)] = node
    net._compute_routes_from_graph(port_of)


def _build_switch_tree(net: Network,
                       fault_injector: Optional[FaultInjector]) -> None:
    """8-port leaves (7 hosts + uplink on port 7) under one root.

    With a single leaf (``n_nodes <= 7``) the root and its uplink would
    carry no routes — a dead switch polluting ``switches``/``links``
    (and every per-switch telemetry callback), so the degenerate tree
    collapses to just the leaf crossbar.
    """
    n = net.n_nodes
    hosts_per_leaf = 7
    n_leaves = max(1, math.ceil(n / hosts_per_leaf))
    port_of: dict = {}
    root = None
    if n_leaves > 1:
        root = net._add_switch("root", n_ports=max(2, n_leaves), level=1)
        port_of[("sw", "root")] = {}
    for leaf_idx in range(n_leaves):
        leaf = net._add_switch(f"leaf{leaf_idx}", n_ports=8)
        port_of[("sw", leaf.name)] = {}
        if root is not None:
            _switch_link(net, leaf, hosts_per_leaf, root, leaf_idx,
                         fault_injector, port_of)
        for local in range(hosts_per_leaf):
            node = leaf_idx * hosts_per_leaf + local
            if node >= n:
                break
            _host_link(net, node, leaf, local, fault_injector)
            port_of[("sw", leaf.name)][("host", node)] = local
    net._compute_routes_from_graph(port_of)


def _build_mesh2d(net: Network,
                  fault_injector: Optional[FaultInjector]) -> None:
    """Square-ish 2-D mesh of 5-port routers (ports: 0=N 1=S 2=E 3=W 4=host).

    Routes use XY dimension-order routing, computed here directly (it is
    also the shortest path on the grid, but DOR fixes *which* shortest
    path, as the nwrc1032 wormhole chip does, so we bypass networkx).
    """
    n = net.n_nodes
    cols = max(1, math.ceil(math.sqrt(n)))
    rows = max(1, math.ceil(n / cols))
    N_, S_, E_, W_, H_ = 0, 1, 2, 3, 4
    routers: dict[tuple[int, int], Switch] = {}
    for r in range(rows):
        for c in range(cols):
            routers[(r, c)] = net._add_switch(f"mesh{r}_{c}", n_ports=5)
    port_of: dict = {("sw", sw.name): {} for sw in routers.values()}
    for (r, c), sw in routers.items():
        if c + 1 < cols:
            _switch_link(net, sw, E_, routers[(r, c + 1)], W_,
                         fault_injector, port_of)
        if r + 1 < rows:
            _switch_link(net, sw, S_, routers[(r + 1, c)], N_,
                         fault_injector, port_of)
    coords: dict[int, tuple[int, int]] = {}
    for node in range(n):
        r, c = divmod(node, cols)
        coords[node] = (r, c)
        _host_link(net, node, routers[(r, c)], H_, fault_injector)
        port_of[("sw", routers[(r, c)].name)][("host", node)] = H_
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            (r0, c0), (r1, c1) = coords[src], coords[dst]
            ports: list[int] = []
            c = c0
            while c != c1:          # X first
                ports.append(E_ if c1 > c else W_)
                c += 1 if c1 > c else -1
            r = r0
            while r != r1:          # then Y
                ports.append(S_ if r1 > r else N_)
                r += 1 if r1 > r else -1
            ports.append(H_)        # eject to the host port
            net._routes[(src, dst)] = tuple(ports)


def _fat_tree_k(n: int, override: int) -> int:
    """The Clos arity: override, or the smallest even k with k^3/4 >= n."""
    if override:
        if override ** 3 // 4 < n:
            raise ValueError(
                f"fat_tree_k={override} holds {override ** 3 // 4} hosts, "
                f"need {n}")
        return override
    k = 2
    while k ** 3 // 4 < n:
        k += 2
    return k


def _ecmp_pick(src: int, dst: int, seed: int, n_choices: int) -> int:
    """Deterministic ECMP: a stable per-flow hash over (src, dst, seed).

    CRC32 rather than Python ``hash()`` so the selection is identical
    across interpreter runs and worker processes (PYTHONHASHSEED-proof),
    which the cache-keyed experiment runner and the parity guards rely
    on.
    """
    digest = zlib.crc32(struct.pack("<qqq", src, dst, seed))
    return digest % n_choices


def _build_fat_tree(net: Network,
                    fault_injector: Optional[FaultInjector]) -> None:
    """k-ary 3-level Clos with source-routed up/down paths + ECMP.

    Port conventions (all switches have radix k):

    * edge  — ports ``0..k/2-1`` face hosts; port ``k/2 + i`` goes up to
      the pod's aggregation switch ``i``;
    * agg   — port ``e`` goes down to edge ``e``; port ``k/2 + j`` goes
      up to core ``(i, j)`` where ``i`` is the agg's own index;
    * core ``(i, j)`` — port ``p`` goes down to pod ``p``'s agg ``i``.

    Hosts fill pods in order; only occupied pods (and only occupied
    edges within them) are instantiated, and the core layer is omitted
    when a single pod holds every host — the same dead-switch collapse
    the switch_tree builder applies.  Routes go up to a deterministic
    ECMP-chosen common ancestor, then down: the up*/down* structure is
    what makes fat-tree source routing deadlock-free.
    """
    n = net.n_nodes
    cfg = net.cfg
    k = _fat_tree_k(n, cfg.fat_tree_k)
    half = k // 2
    pod_cap = half * half            # hosts per pod
    n_pods = math.ceil(n / pod_cap)
    net.meta.update(k=k, half=half, n_pods=n_pods, pod_capacity=pod_cap)

    def host_coords(node: int) -> tuple[int, int, int]:
        pod, m = divmod(node, pod_cap)
        edge, port = divmod(m, half)
        return pod, edge, port

    port_of: dict = {}
    edges: dict[tuple[int, int], Switch] = {}
    aggs: dict[tuple[int, int], Switch] = {}
    cores: dict[tuple[int, int], Switch] = {}
    # Occupied edges per pod (hosts fill in order, so a contiguous prefix).
    edges_in_pod = [min(half, math.ceil((n - p * pod_cap) / half))
                    for p in range(n_pods)]
    multi_edge = n_pods > 1 or edges_in_pod[0] > 1

    for p in range(n_pods):
        for e in range(edges_in_pod[p]):
            sw = net._add_switch(f"ft.p{p}.e{e}", n_ports=k, level=0)
            edges[(p, e)] = sw
            port_of[("sw", sw.name)] = {}
        if multi_edge:
            for i in range(half):
                sw = net._add_switch(f"ft.p{p}.a{i}", n_ports=k, level=1)
                aggs[(p, i)] = sw
                port_of[("sw", sw.name)] = {}
    if n_pods > 1:
        for i in range(half):
            for j in range(half):
                sw = net._add_switch(f"ft.c{i}_{j}", n_ports=k, level=2)
                cores[(i, j)] = sw
                port_of[("sw", sw.name)] = {}

    # Wire: edge e's up port half+i <-> agg i's down port e.
    for (p, e), edge_sw in edges.items():
        for i in range(half):
            if (p, i) in aggs:
                _switch_link(net, edge_sw, half + i, aggs[(p, i)], e,
                             fault_injector, port_of)
    # Wire: agg (p, i)'s up port half+j <-> core (i, j)'s port p.
    for (p, i), agg_sw in aggs.items():
        for j in range(half):
            if (i, j) in cores:
                _switch_link(net, agg_sw, half + j, cores[(i, j)], p,
                             fault_injector, port_of)
    for node in range(n):
        pod, e, h = host_coords(node)
        _host_link(net, node, edges[(pod, e)], h, fault_injector)
        port_of[("sw", edges[(pod, e)].name)][("host", node)] = h

    # Source routes: up to the ECMP-chosen common ancestor, then down.
    seed = cfg.ecmp_seed
    for src in range(n):
        s_pod, s_edge, _ = host_coords(src)
        for dst in range(n):
            if dst == src:
                continue
            d_pod, d_edge, d_port = host_coords(dst)
            if (s_pod, s_edge) == (d_pod, d_edge):
                route = (d_port,)
            elif s_pod == d_pod:
                a = _ecmp_pick(src, dst, seed, half)
                route = (half + a, d_edge, d_port)
            else:
                choice = _ecmp_pick(src, dst, seed, half * half)
                a, j = divmod(choice, half)
                route = (half + a, half + j, d_pod, d_edge, d_port)
            net._routes[(src, dst)] = route
