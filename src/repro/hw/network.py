"""Topology construction and source-route computation.

DAWNING-3000's system area network is either Myrinet (8-port switches)
or the custom nwrc 2-D mesh; both are source-routed cut-through
fabrics.  :func:`build_network` assembles NIC-facing link endpoints,
switches and inter-switch links for several topologies and precomputes
the source route (sequence of switch output ports) for every ordered
node pair, using :mod:`networkx` shortest paths over the fabric graph.

Topologies:

* ``single_switch`` — all nodes on one crossbar (grown to the needed
  radix); the calibration topology, 2 links + 1 switch per path.
* ``switch_tree`` — 8-port leaf switches (7 hosts + 1 uplink) under a
  root switch, like a small DAWNING Myrinet installation.
* ``mesh2d`` — a 2-D grid of 5-port routing chips (N/S/E/W/host) with
  XY dimension-order routing, standing in for the nwrc mesh.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import networkx as nx

from repro.config import CostModel
from repro.firmware.packet import Packet
from repro.hw.link import Link, LinkEndpoint
from repro.hw.switch import Switch
from repro.sim import Environment

__all__ = ["Network", "build_network"]

FaultInjector = Callable[[Packet], Optional[Packet]]


class Network:
    """A built fabric: per-node attach endpoints plus a route table."""

    def __init__(self, env: Environment, cfg: CostModel, n_nodes: int,
                 topology: str):
        self.env = env
        self.cfg = cfg
        self.n_nodes = n_nodes
        self.topology = topology
        self.switches: list[Switch] = []
        self.links: list[Link] = []
        #: endpoint the node's NIC transmits/receives on, per node id
        self.nic_endpoints: dict[int, LinkEndpoint] = {}
        self._routes: dict[tuple[int, int], tuple[int, ...]] = {}
        self.graph = nx.Graph()

    def register_metrics(self, registry) -> None:
        """Register every link's and switch's tallies (observation only)."""
        for link in self.links:
            link.register_metrics(registry)
        for switch in self.switches:
            registry.register_callback(
                "repro_switch_packets_forwarded_total",
                lambda sw=switch: sw.packets_forwarded,
                kind="counter", switch=switch.name)
            registry.register_callback(
                "repro_switch_route_errors_total",
                lambda sw=switch: sw.route_errors,
                kind="counter", switch=switch.name)

    def route(self, src: int, dst: int) -> tuple[int, ...]:
        """Source route (switch output ports) from node src to node dst."""
        if src == dst:
            raise ValueError(f"no network route from node {src} to itself")
        try:
            return self._routes[(src, dst)]
        except KeyError:
            raise ValueError(f"no route from node {src} to node {dst}") from None

    def hops(self, src: int, dst: int) -> int:
        """Number of switches on the path."""
        return len(self.route(src, dst))

    # -- construction helpers (used by build_network) -------------------
    def _add_link(self, name: str,
                  fault_injector: Optional[FaultInjector] = None) -> Link:
        link = Link(self.env, self.cfg, name, fault_injector)
        self.links.append(link)
        return link

    def _add_switch(self, name: str, n_ports: int) -> Switch:
        sw = Switch(self.env, self.cfg, name, n_ports)
        self.switches.append(sw)
        return sw

    def _compute_routes_from_graph(
            self, port_of: dict[tuple[str, int], dict[tuple[str, int], int]]
    ) -> None:
        """Fill the route table from ``self.graph`` shortest paths.

        ``port_of[switch_vertex][neighbor_vertex]`` is the switch port
        facing that neighbor.
        """
        for src in range(self.n_nodes):
            paths = nx.single_source_shortest_path(self.graph, ("host", src))
            for dst in range(self.n_nodes):
                if dst == src:
                    continue
                path = paths.get(("host", dst))
                if path is None:
                    raise ValueError(
                        f"topology {self.topology!r} leaves node {dst} "
                        f"unreachable from node {src}")
                ports = []
                for i in range(1, len(path) - 1):
                    vertex = path[i]
                    ports.append(port_of[vertex][path[i + 1]])
                self._routes[(src, dst)] = tuple(ports)


def build_network(env: Environment, cfg: CostModel, n_nodes: int,
                  topology: str = "single_switch",
                  fault_injector: Optional[FaultInjector] = None) -> Network:
    """Build a fabric for ``n_nodes`` nodes.

    ``fault_injector``, if given, is installed on every link (packet ->
    packet | corrupted packet | None-to-drop); the reliability tests use
    it to exercise retransmission.
    """
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    net = Network(env, cfg, n_nodes, topology)
    if topology == "single_switch":
        _build_single_switch(net, fault_injector)
    elif topology == "switch_tree":
        _build_switch_tree(net, fault_injector)
    elif topology == "mesh2d":
        _build_mesh2d(net, fault_injector)
    else:
        raise ValueError(f"unknown topology {topology!r}")
    return net


def _host_link(net: Network, node: int, sw: Switch, port: int,
               fault_injector: Optional[FaultInjector]) -> None:
    link = net._add_link(f"link.h{node}-{sw.name}p{port}", fault_injector)
    net.nic_endpoints[node] = link.a
    sw.connect(port, link.b)
    net.graph.add_edge(("host", node), ("sw", sw.name))


def _switch_link(net: Network, sw_a: Switch, port_a: int, sw_b: Switch,
                 port_b: int, fault_injector: Optional[FaultInjector],
                 port_of: dict) -> None:
    link = net._add_link(f"link.{sw_a.name}p{port_a}-{sw_b.name}p{port_b}",
                         fault_injector)
    sw_a.connect(port_a, link.a)
    sw_b.connect(port_b, link.b)
    net.graph.add_edge(("sw", sw_a.name), ("sw", sw_b.name))
    port_of[("sw", sw_a.name)][("sw", sw_b.name)] = port_a
    port_of[("sw", sw_b.name)][("sw", sw_a.name)] = port_b


def _build_single_switch(net: Network,
                         fault_injector: Optional[FaultInjector]) -> None:
    n = net.n_nodes
    sw = net._add_switch("sw0", n_ports=max(2, n))
    port_of: dict = {("sw", "sw0"): {}}
    for node in range(n):
        _host_link(net, node, sw, node, fault_injector)
        port_of[("sw", "sw0")][("host", node)] = node
    net._compute_routes_from_graph(port_of)


def _build_switch_tree(net: Network,
                       fault_injector: Optional[FaultInjector]) -> None:
    """8-port leaves (7 hosts + uplink on port 7) under one root."""
    n = net.n_nodes
    hosts_per_leaf = 7
    n_leaves = max(1, math.ceil(n / hosts_per_leaf))
    root = net._add_switch("root", n_ports=max(2, n_leaves))
    port_of: dict = {("sw", "root"): {}}
    for leaf_idx in range(n_leaves):
        leaf = net._add_switch(f"leaf{leaf_idx}", n_ports=8)
        port_of[("sw", leaf.name)] = {}
        _switch_link(net, leaf, hosts_per_leaf, root, leaf_idx,
                     fault_injector, port_of)
        for local in range(hosts_per_leaf):
            node = leaf_idx * hosts_per_leaf + local
            if node >= n:
                break
            _host_link(net, node, leaf, local, fault_injector)
            port_of[("sw", leaf.name)][("host", node)] = local
    net._compute_routes_from_graph(port_of)


def _build_mesh2d(net: Network,
                  fault_injector: Optional[FaultInjector]) -> None:
    """Square-ish 2-D mesh of 5-port routers (ports: 0=N 1=S 2=E 3=W 4=host).

    Routes use XY dimension-order routing, computed here directly (it is
    also the shortest path on the grid, but DOR fixes *which* shortest
    path, as the nwrc1032 wormhole chip does, so we bypass networkx).
    """
    n = net.n_nodes
    cols = max(1, math.ceil(math.sqrt(n)))
    rows = max(1, math.ceil(n / cols))
    N_, S_, E_, W_, H_ = 0, 1, 2, 3, 4
    routers: dict[tuple[int, int], Switch] = {}
    for r in range(rows):
        for c in range(cols):
            routers[(r, c)] = net._add_switch(f"mesh{r}_{c}", n_ports=5)
    port_of: dict = {("sw", sw.name): {} for sw in routers.values()}
    for (r, c), sw in routers.items():
        if c + 1 < cols:
            _switch_link(net, sw, E_, routers[(r, c + 1)], W_,
                         fault_injector, port_of)
        if r + 1 < rows:
            _switch_link(net, sw, S_, routers[(r + 1, c)], N_,
                         fault_injector, port_of)
    coords: dict[int, tuple[int, int]] = {}
    for node in range(n):
        r, c = divmod(node, cols)
        coords[node] = (r, c)
        _host_link(net, node, routers[(r, c)], H_, fault_injector)
        port_of[("sw", routers[(r, c)].name)][("host", node)] = H_
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            (r0, c0), (r1, c1) = coords[src], coords[dst]
            ports: list[int] = []
            c = c0
            while c != c1:          # X first
                ports.append(E_ if c1 > c else W_)
                c += 1 if c1 > c else -1
            r = r0
            while r != r1:          # then Y
                ports.append(S_ if r1 > r else N_)
                r += 1 if r1 > r else -1
            ports.append(H_)        # eject to the host port
            net._routes[(src, dst)] = tuple(ports)
