"""Static lint for the classic generator-coroutine misuse.

In a generator-based discrete-event simulation, calling a generator
method as a plain statement::

    self._charge(cost)          # creates a generator, runs NOTHING

is a silent no-op: the body never executes because nobody iterates the
generator.  The correct form is ``yield from self._charge(cost)`` (or
driving it via ``env.process``).  This bug class compiles, passes type
checks, and skews results quietly — exactly what a lint is for.

Two passes over the AST of every file:

1. **registry** — collect every ``def``; a function is a *generator*
   when its own body (nested defs/lambdas excluded) contains ``yield``
   or ``yield from``.  Names are recorded globally and per class.
2. **check** — flag every expression statement that is a bare call
   whose callee resolves *unambiguously* to a generator:
   ``self.name(...)`` resolves through the enclosing class first, then
   the global registry; ``name(...)`` / ``obj.name(...)`` resolve
   through the global registry only.  If any same-named def is a
   non-generator the name is ambiguous and skipped (no false
   positives by construction).

Intentional handle-returning calls can be exempted with the in-source
pragma ``# audit: allow-bare-call`` on the offending line, or with
``--allow NAME`` on the command line.

Usage::

    python -m repro.audit.lint src tests examples [--allow NAME]...

Exit status 1 when violations are found, with ``path:line:`` messages.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterable, Optional

__all__ = ["LintViolation", "lint_paths", "main"]

PRAGMA = "audit: allow-bare-call"


class LintViolation:
    __slots__ = ("path", "line", "name", "message")

    def __init__(self, path: Path, line: int, name: str):
        self.path = path
        self.line = line
        self.name = name
        self.message = (
            f"{path}:{line}: generator '{name}' called without "
            f"'yield from' — the call is a silent no-op "
            f"(exempt with '# {PRAGMA}')")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LintViolation({self.message!r})"


def _is_generator(fn: ast.FunctionDef) -> bool:
    """True when fn's own body yields (nested defs/lambdas excluded)."""
    stack = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


class _Registry:
    """Generator-ness of every collected def, global and per class."""

    def __init__(self) -> None:
        # name -> list of is_generator across every def with that name
        self.globals: dict[str, list[bool]] = {}
        # class name -> {method name -> is_generator | None (ambiguous)}
        self.methods: dict[str, dict[str, Optional[bool]]] = {}

    def add(self, class_name: Optional[str], fn: ast.FunctionDef) -> None:
        is_gen = _is_generator(fn)
        self.globals.setdefault(fn.name, []).append(is_gen)
        if class_name is not None:
            table = self.methods.setdefault(class_name, {})
            if fn.name in table and table[fn.name] != is_gen:
                table[fn.name] = None
            else:
                table.setdefault(fn.name, is_gen)

    def resolve(self, name: str, class_name: Optional[str],
                via_self: bool) -> Optional[bool]:
        """Best-effort generator-ness; None when unknown/ambiguous."""
        if via_self and class_name is not None:
            verdict = self.methods.get(class_name, {}).get(name)
            if verdict is not None:
                return verdict
        flags = self.globals.get(name)
        if not flags:
            return None
        if all(flags):
            return True
        if not any(flags):
            return False
        return None  # mixed: some defs yield, some don't


def _local_bindings(fn: ast.FunctionDef) -> set[str]:
    """Names bound as parameters or assignments in ``fn``'s own body.

    These shadow module-level defs, so a bare call through one is not
    resolvable by name (``def expect(name, fn): fn()`` must not match
    unrelated generators that happen to be called ``fn``).  Nested def
    names are *not* included: those are collected by the registry and
    stay resolvable.
    """
    args = fn.args
    names = {a.arg for a in (args.posonlyargs + args.args
                             + args.kwonlyargs)}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)

    def add_target(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                add_target(elt)

    stack = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        if isinstance(node, ast.Assign):
            for target in node.targets:
                add_target(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.For)):
            add_target(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    add_target(item.optional_vars)
        stack.extend(ast.iter_child_nodes(node))
    return names


class _DefCollector(ast.NodeVisitor):
    def __init__(self, registry: _Registry):
        self.registry = registry
        self._class_stack: list[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        owner = self._class_stack[-1] if self._class_stack else None
        self.registry.add(owner, node)
        self.generic_visit(node)


class _CallChecker(ast.NodeVisitor):
    def __init__(self, registry: _Registry, path: Path,
                 source_lines: list[str], allow: frozenset):
        self.registry = registry
        self.path = path
        self.lines = source_lines
        self.allow = allow
        self.violations: list[LintViolation] = []
        self._class_stack: list[str] = []
        self._locals_stack: list[set[str]] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._locals_stack.append(_local_bindings(node))
        self.generic_visit(node)
        self._locals_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    @staticmethod
    def _callee(func: ast.expr) -> tuple[Optional[str], bool]:
        """(callee name, reached via ``self.``) or (None, False)."""
        if isinstance(func, ast.Name):
            return func.id, False
        if isinstance(func, ast.Attribute):
            via_self = (isinstance(func.value, ast.Name)
                        and func.value.id == "self")
            return func.attr, via_self
        return None, False

    def visit_Expr(self, node: ast.Expr) -> None:
        call = node.value
        if isinstance(call, ast.Call):
            name, via_self = self._callee(call.func)
            shadowed = (isinstance(call.func, ast.Name)
                        and any(name in scope
                                for scope in self._locals_stack))
            if (name is not None and not shadowed
                    and name not in self.allow
                    and not self._pragma(node.lineno)):
                owner = (self._class_stack[-1]
                         if self._class_stack else None)
                if self.registry.resolve(name, owner, via_self):
                    self.violations.append(
                        LintViolation(self.path, node.lineno, name))
        self.generic_visit(node)

    def _pragma(self, lineno: int) -> bool:
        if 0 < lineno <= len(self.lines):
            return PRAGMA in self.lines[lineno - 1]
        return False


def _collect_files(paths: Iterable[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_paths(paths: Iterable[str],
               allow: Iterable[str] = ()) -> list[LintViolation]:
    """Lint every ``.py`` file under ``paths``; return violations."""
    files = _collect_files(paths)
    parsed: list[tuple[Path, ast.Module, list[str]]] = []
    registry = _Registry()
    for path in files:
        try:
            source = path.read_text()
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            print(f"{path}: skipped ({exc.__class__.__name__})",
                  file=sys.stderr)
            continue
        parsed.append((path, tree, source.splitlines()))
        _DefCollector(registry).visit(tree)
    allow_set = frozenset(allow)
    violations: list[LintViolation] = []
    for path, tree, lines in parsed:
        checker = _CallChecker(registry, path, lines, allow_set)
        checker.visit(tree)
        violations.extend(checker.violations)
    return violations


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.audit.lint",
        description="Flag generator methods called without 'yield from'.")
    parser.add_argument("paths", nargs="+",
                        help="files or directories to lint")
    parser.add_argument("--allow", action="append", default=[],
                        metavar="NAME",
                        help="exempt calls to NAME (repeatable)")
    args = parser.parse_args(argv)
    violations = lint_paths(args.paths, allow=args.allow)
    for violation in violations:
        print(violation.message)
    if violations:
        print(f"{len(violations)} generator-misuse violation(s)",
              file=sys.stderr)
        return 1
    files = len(_collect_files(args.paths))
    print(f"repro.audit.lint: {files} files clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
