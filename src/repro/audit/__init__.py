"""Runtime invariant auditing for the simulated communication stack.

The paper's claims are accounting claims — every microsecond and every
byte is attributed to a specific stage — so the reproduction carries a
sanitizer-style auditor that checks the accounting mechanically while
the simulation runs:

* **sim core** — no event is ever processed at a time earlier than the
  clock, and no waiter is left orphaned in a Store/Resource queue at
  quiesce;
* **NIC/firmware** — per-flow byte conservation (every payload byte
  put on the wire is delivered, dropped with a fault record, or
  retransmitted and deduplicated), sequence-number monotonicity, and
  reassembly-map emptiness at quiesce;
* **kernel** — pin-down pages released at process exit, and pin-down
  table entries always backed by a live pin (no double-unpin drift);
* **BCL/EADI** — eager-credit balance never exceeds the initial grant,
  and no credit/channel waiter survives endpoint teardown.

Enable globally with :func:`enable` (or ``REPRO_AUDIT=1`` — inherited
by ``--jobs N`` worker processes), per run with ``repro evaluate
--audit`` / ``pytest --audit``, or per cluster with
``Cluster(audit=True)``.  Violations raise :class:`AuditError` with a
structured report naming the layer, rule, flow and offending event.

The auditor is a pure observer: it schedules no events, consumes no
randomness and never mutates protocol state, so an audited run is
byte-identical to an unaudited one (cache entries stay valid).

:mod:`repro.audit.lint` is the static companion: an AST lint that
flags generator methods called without ``yield from`` (a silent no-op
in generator-coroutine simulations).  Run it as
``python -m repro.audit.lint src tests examples``.
"""

from repro.audit.core import (
    AuditError,
    Auditor,
    BclChecker,
    FirmwareChecker,
    KernelChecker,
    SimChecker,
    Violation,
    attach,
    disable,
    enable,
    enabled,
)

__all__ = [
    "AuditError",
    "Auditor",
    "BclChecker",
    "FirmwareChecker",
    "KernelChecker",
    "SimChecker",
    "Violation",
    "attach",
    "disable",
    "enable",
    "enabled",
]
