"""The runtime invariant auditor.

One :class:`Auditor` attaches to an :class:`~repro.sim.Environment`
(``env._audit``) and carries four pluggable layer checkers.  The
instrumented modules (sim core, resources, firmware, kernel, EADI)
look the auditor up with ``getattr(env, "_audit", None)`` and notify it
at the relevant points; with no auditor attached the hooks cost one
attribute read.

Checkers are *pure observers*: they read counters and queue state but
never schedule events, consume randomness or mutate protocol state, so
audited runs produce byte-identical results to unaudited ones.  Two
kinds of checks exist:

* **runtime checks** fire the instant an invariant breaks (an event
  processed before the clock, a non-monotonic sequence number, a
  credit balance above the initial grant) and name the offending
  event/packet;
* **quiesce checks** fire when :meth:`Environment.run` drains the heap
  dry — the only instant where conservation equations must balance
  (per-flow byte conservation, orphaned waiters, reassembly residue,
  pin-down table consistency).

Custom checkers can be appended to ``auditor.checkers``; anything with
a ``quiesce(auditor) -> list[Violation]`` method participates.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro.firmware.packet import SEQUENCED_TYPES

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.cluster import Cluster
    from repro.firmware.mcp import Mcp
    from repro.firmware.reliability import GoBackNReceiver, GoBackNSender
    from repro.sim import Environment

__all__ = [
    "AuditError",
    "Auditor",
    "BclChecker",
    "FirmwareChecker",
    "KernelChecker",
    "SimChecker",
    "Violation",
    "attach",
    "disable",
    "enable",
    "enabled",
]


# ------------------------------------------------------------- enablement
_ENABLED = False


def enable() -> None:
    """Turn auditing on globally: every :class:`~repro.cluster.Cluster`
    built afterwards attaches an auditor.  Also exported through the
    ``REPRO_AUDIT`` environment variable so ``--jobs N`` worker
    processes inherit the setting."""
    global _ENABLED
    _ENABLED = True
    os.environ["REPRO_AUDIT"] = "1"


def disable() -> None:
    global _ENABLED
    _ENABLED = False
    os.environ.pop("REPRO_AUDIT", None)


def enabled() -> bool:
    """True when auditing is globally enabled (module flag or env var)."""
    return _ENABLED or os.environ.get("REPRO_AUDIT", "") not in ("", "0")


def attach(cluster: "Cluster") -> "Auditor":
    """Attach an auditor to ``cluster`` (creating one on its environment
    if needed) and bind the cluster for quiesce-time checks."""
    env = cluster.env
    auditor = getattr(env, "_audit", None)
    if auditor is None:
        auditor = Auditor(env)
    auditor.bind_cluster(cluster)
    return auditor


# ------------------------------------------------------------ violations
@dataclass(frozen=True)
class Violation:
    """One broken invariant, locatable by layer, rule and flow."""

    layer: str                      # sim | firmware | kernel | bcl
    rule: str                       # e.g. "byte-conservation"
    detail: str                     # human-readable accounting
    flow: Optional[tuple[int, int]] = None   # (src_nic, dst_nic)
    event: str = ""                 # offending event/packet, if known
    t_ns: int = 0

    def format(self) -> str:
        where = f" flow {self.flow[0]}->{self.flow[1]}" if self.flow else ""
        ev = f" [event: {self.event}]" if self.event else ""
        return (f"[{self.layer}/{self.rule}]{where} at t={self.t_ns} ns: "
                f"{self.detail}{ev}")


class AuditError(RuntimeError):
    """Raised by the auditor; carries the structured violation list."""

    def __init__(self, violations: Iterable[Violation]):
        self.violations = tuple(violations)
        lines = [f"{len(self.violations)} audit violation(s):"]
        lines += ["  " + v.format() for v in self.violations]
        super().__init__("\n".join(lines))


# --------------------------------------------------------------- checkers
class SimChecker:
    """Sim core: events never run in the past; no orphaned waiters.

    Stores and Resources self-register at construction (when the
    environment carries an auditor).  At quiesce every queued waiter
    event must still have at least one callback — a queued event with
    no callbacks can never resume anyone, so a later hand-off would be
    silently lost.
    """

    layer = "sim"

    def __init__(self) -> None:
        self._stores: list[weakref.ref] = []
        self._resources: list[weakref.ref] = []

    def register_store(self, store) -> None:
        self._stores.append(weakref.ref(store))

    def register_resource(self, resource) -> None:
        self._resources.append(weakref.ref(resource))

    @staticmethod
    def _orphaned(event) -> bool:
        if event.triggered:
            return False
        callbacks = event._callbacks
        return callbacks is None or not callbacks

    def quiesce(self, auditor: "Auditor") -> list[Violation]:
        now = auditor.env.now
        violations: list[Violation] = []
        live_stores = []
        for ref in self._stores:
            store = ref()
            if store is None:
                continue
            live_stores.append(ref)
            for queue_name in ("_getters", "_putters"):
                for ev in getattr(store, queue_name):
                    if self._orphaned(ev):
                        violations.append(Violation(
                            self.layer, "orphaned-waiter",
                            f"store waiter in {queue_name} has no "
                            "callbacks; a hand-off would be lost",
                            event=repr(ev), t_ns=now))
        self._stores = live_stores
        live_resources = []
        for ref in self._resources:
            resource = ref()
            if resource is None:
                continue
            live_resources.append(ref)
            for ev in resource._queue:
                if self._orphaned(ev):
                    violations.append(Violation(
                        self.layer, "orphaned-waiter",
                        "resource request queued with no callbacks; a "
                        "later grant would go to a dead requester",
                        event=repr(ev), t_ns=now))
        self._resources = live_resources
        return violations


class FirmwareChecker:
    """NIC/firmware: per-flow byte conservation and sequencing.

    Conservation, checked at quiesce for every go-back-N flow::

        registered + retransmitted + injector-duplicates
            == arrived-at-receiver + injector-drops

    in both packets and payload bytes — every wire copy is either
    adjudicated away with a fault record or classified by the
    receiver (delivered, duplicate, out-of-order or corrupt).  On top
    of that, exactly-once delivery (``delivered == registered``, the
    retransmit/dedup closure) and reassembly-map emptiness.

    Sequence monotonicity is checked at runtime by wrapping each
    receiver's ``accept``: ``expected_seq`` never decreases and every
    delivery carries exactly the previously expected sequence number.
    """

    layer = "firmware"

    def __init__(self) -> None:
        #: flow (src_nic, dst_nic) -> (sender, owning mcp)
        self.senders: dict[tuple[int, int], tuple] = {}
        #: flow (src_nic, dst_nic) -> (receiver, owning mcp)
        self.receivers: dict[tuple[int, int], tuple] = {}

    # -- registration (called by Mcp when flows are lazily created)
    def register_sender(self, mcp: "Mcp", sender: "GoBackNSender") -> None:
        self.senders[sender.flow] = (sender, mcp)

    def register_receiver(self, auditor: "Auditor", mcp: "Mcp",
                          src_nic: int,
                          receiver: "GoBackNReceiver") -> None:
        flow = (src_nic, mcp.nic.node_id)
        self.receivers[flow] = (receiver, mcp)
        inner = receiver.accept

        def audited_accept(packet, _inner=inner, _recv=receiver, _flow=flow):
            before = _recv.expected_seq
            deliver, ack_seq = _inner(packet)
            self._check_accept(auditor, _flow, _recv, packet, before,
                               deliver)
            return deliver, ack_seq

        receiver.accept = audited_accept

    def _check_accept(self, auditor, flow, receiver, packet, before,
                      deliver) -> None:
        now = auditor.env.now
        violations = []
        if receiver.expected_seq < before:
            violations.append(Violation(
                self.layer, "sequence-monotonicity",
                f"expected_seq went backwards: {before} -> "
                f"{receiver.expected_seq}", flow=flow,
                event=f"seq={packet.seq} {packet.ptype.value}", t_ns=now))
        if deliver and packet.seq != before:
            violations.append(Violation(
                self.layer, "in-order-delivery",
                f"delivered seq {packet.seq} while expecting {before}",
                flow=flow,
                event=f"seq={packet.seq} msg={packet.message_id}", t_ns=now))
        if violations:
            auditor._raise(violations)

    # -- quiesce accounting
    @staticmethod
    def _iter_injectors(clusters) -> list:
        injectors, seen = [], set()
        for cluster in clusters:
            candidates = list(cluster.fault_injectors)
            candidates += [link.injector for link in cluster.network.links]
            for mcp in cluster.mcps:
                candidates.append(mcp.egress_injector)
                candidates.append(mcp.nic.rx_injector)
            for injector in candidates:
                if injector is not None and id(injector) not in seen:
                    seen.add(id(injector))
                    injectors.append(injector)
        return injectors

    def quiesce(self, auditor: "Auditor") -> list[Violation]:
        now = auditor.env.now
        violations: list[Violation] = []
        injectors = self._iter_injectors(auditor.clusters)

        def injected(counter: str, flow) -> int:
            return sum(getattr(inj, counter, {}).get(flow, 0)
                       for inj in injectors)

        for flow, (sender, _mcp) in self.senders.items():
            receiver_entry = self.receivers.get(flow)
            receiver = receiver_entry[0] if receiver_entry else None
            dst_mcp = receiver_entry[1] if receiver_entry else None
            if dst_mcp is not None and not dst_mcp.reliable:
                continue  # BIP-style mode keeps no delivery promise
            wire_packets = (sender.next_seq + sender.retransmissions
                            + injected("flow_dup_packets", flow))
            wire_bytes = (sender.bytes_registered
                          + sender.bytes_retransmitted
                          + injected("flow_dup_bytes", flow))
            arrived_packets = getattr(receiver, "packets_arrived", 0)
            arrived_bytes = getattr(receiver, "bytes_arrived", 0)
            dropped_packets = injected("flow_drop_packets", flow)
            dropped_bytes = injected("flow_drop_bytes", flow)
            if (arrived_packets + dropped_packets != wire_packets
                    or arrived_bytes + dropped_bytes != wire_bytes):
                violations.append(Violation(
                    self.layer, "byte-conservation",
                    f"on-wire {wire_packets} pkts/{wire_bytes} B "
                    f"(registered {sender.next_seq}/"
                    f"{sender.bytes_registered} + retx "
                    f"{sender.retransmissions}/"
                    f"{sender.bytes_retransmitted} + dup "
                    f"{injected('flow_dup_packets', flow)}/"
                    f"{injected('flow_dup_bytes', flow)}) != arrived "
                    f"{arrived_packets}/{arrived_bytes} + dropped "
                    f"{dropped_packets}/{dropped_bytes}",
                    flow=flow, t_ns=now))
            if sender.in_flight:
                violations.append(Violation(
                    self.layer, "window-not-drained",
                    f"{sender.in_flight} packets unacknowledged at "
                    "quiesce with no retransmit timer pending",
                    flow=flow, t_ns=now))
            elif receiver is not None:
                delivered_p = getattr(receiver, "packets_delivered", 0)
                delivered_b = getattr(receiver, "bytes_delivered", 0)
                if (delivered_p != sender.next_seq
                        or delivered_b != sender.bytes_registered):
                    violations.append(Violation(
                        self.layer, "exactly-once-delivery",
                        f"registered {sender.next_seq} pkts/"
                        f"{sender.bytes_registered} B but delivered "
                        f"{delivered_p}/{delivered_b} after dedup",
                        flow=flow, t_ns=now))
            elif sender.next_seq:
                violations.append(Violation(
                    self.layer, "exactly-once-delivery",
                    f"{sender.next_seq} packets registered but the "
                    "destination never instantiated a receiver flow",
                    flow=flow, t_ns=now))

        for cluster in auditor.clusters:
            for mcp in cluster.mcps:
                if not mcp.reliable:
                    continue
                if mcp._inflight_pool:
                    violations.append(Violation(
                        self.layer, "reassembly-residue",
                        f"{mcp.name}: {len(mcp._inflight_pool)} "
                        "system-pool buffers still claimed by in-flight "
                        f"messages {sorted(mcp._inflight_pool)}",
                        t_ns=now))
                for port in mcp.nic.ports.values():
                    if port.reassembly:
                        violations.append(Violation(
                            self.layer, "reassembly-residue",
                            f"{mcp.name} port {port.port_id}: partial "
                            f"messages {sorted(port.reassembly)} never "
                            "completed", t_ns=now))
        return violations


class KernelChecker:
    """Kernel: pin-down pages released at process exit; table entries
    always backed by a live pin (a desynced entry means some path
    unpinned a page behind the table's back — the double-unpin class).
    """

    layer = "kernel"

    def on_process_exit(self, auditor: "Auditor", node, proc) -> None:
        now = auditor.env.now
        violations = []
        if proc.space.pinned_pages:
            violations.append(Violation(
                self.layer, "pin-leak-at-exit",
                f"{node.name} pid {proc.pid} exited with "
                f"{proc.space.pinned_pages} pages still pinned",
                event=f"pid={proc.pid}", t_ns=now))
        if node.kernel is not None:
            stale = [key for key in node.kernel.pindown._entries
                     if key[0] == proc.pid]
            if stale:
                violations.append(Violation(
                    self.layer, "pindown-entries-at-exit",
                    f"{node.name} pid {proc.pid} exited leaving "
                    f"{len(stale)} pin-down table entries",
                    event=f"pid={proc.pid}", t_ns=now))
        if violations:
            auditor._raise(violations)

    def quiesce(self, auditor: "Auditor") -> list[Violation]:
        now = auditor.env.now
        violations: list[Violation] = []
        for cluster in auditor.clusters:
            for node in cluster.nodes:
                if node.kernel is None:
                    continue
                for (pid, vpage), space in \
                        node.kernel.pindown._entries.items():
                    if not space.is_pinned(vpage):
                        violations.append(Violation(
                            self.layer, "pindown-desync",
                            f"{node.name}: table entry (pid {pid}, page "
                            f"{vpage:#x}) is not pinned in the address "
                            "space (double unpin?)", t_ns=now))
        return violations


class BclChecker:
    """BCL/EADI: credit balance bounded by the initial grant; no
    credit/channel waiter survives endpoint teardown."""

    layer = "bcl"

    def __init__(self) -> None:
        self._endpoints: list[weakref.ref] = []

    def register_endpoint(self, endpoint) -> None:
        self._endpoints.append(weakref.ref(endpoint))

    def check_credits(self, auditor: "Auditor", endpoint,
                      peer_rank: int) -> None:
        balance = endpoint._credits.get(peer_rank, 0)
        if balance > endpoint._credits_initial:
            auditor._raise([Violation(
                self.layer, "credit-overflow",
                f"rank {endpoint.rank}: credit balance toward peer "
                f"{peer_rank} is {balance}, above the initial grant of "
                f"{endpoint._credits_initial} (double credit return?)",
                event=f"peer={peer_rank}", t_ns=auditor.env.now)])

    def on_teardown(self, auditor: "Auditor", endpoint) -> None:
        violations = self._teardown_violations(auditor.env.now, endpoint)
        if violations:
            auditor._raise(violations)

    def _teardown_violations(self, now: int, endpoint) -> list[Violation]:
        violations = []
        leaked = sum(len(w) for w in endpoint._credit_waiters.values())
        if leaked:
            violations.append(Violation(
                self.layer, "waiter-survived-teardown",
                f"rank {endpoint.rank}: {leaked} credit waiters still "
                "parked after endpoint teardown", t_ns=now))
        if endpoint._channel_waiters:
            violations.append(Violation(
                self.layer, "waiter-survived-teardown",
                f"rank {endpoint.rank}: "
                f"{len(endpoint._channel_waiters)} channel waiters "
                "still parked after endpoint teardown", t_ns=now))
        return violations

    def quiesce(self, auditor: "Auditor") -> list[Violation]:
        now = auditor.env.now
        violations: list[Violation] = []
        live = []
        for ref in self._endpoints:
            endpoint = ref()
            if endpoint is None:
                continue
            live.append(ref)
            if endpoint.closed:
                violations.extend(
                    self._teardown_violations(now, endpoint))
                continue
            for rank, waiters in endpoint._credit_waiters.items():
                for gate in waiters:
                    if not gate.triggered and not gate._callbacks:
                        violations.append(Violation(
                            self.layer, "orphaned-credit-waiter",
                            f"rank {endpoint.rank}: credit waiter "
                            f"toward peer {rank} has no callbacks; a "
                            "credit return would be lost",
                            event=repr(gate), t_ns=now))
        self._endpoints = live
        return violations


# ---------------------------------------------------------------- auditor
class Auditor:
    """Facade owning the layer checkers; installed as ``env._audit``."""

    def __init__(self, env: "Environment"):
        self.env = env
        self.clusters: list = []
        self.sim = SimChecker()
        self.firmware = FirmwareChecker()
        self.kernel = KernelChecker()
        self.bcl = BclChecker()
        #: quiesce participants; extend with anything exposing
        #: ``quiesce(auditor) -> list[Violation]``
        self.checkers: list = [self.sim, self.firmware, self.kernel,
                               self.bcl]
        self.quiesce_checks = 0
        self.violations_raised = 0
        env._audit = self

    def bind_cluster(self, cluster: "Cluster") -> None:
        if cluster not in self.clusters:
            self.clusters.append(cluster)

    # ------------------------------------------------------ engine hooks
    def on_past_event(self, event, when: int, now: int) -> None:
        self._raise([Violation(
            "sim", "past-event",
            f"event scheduled for t={when} ns processed at t={now} ns",
            event=repr(event), t_ns=now)])

    def on_quiesce(self, env: "Environment") -> None:
        """The heap ran dry: every conservation equation must balance."""
        self.quiesce_checks += 1
        violations: list[Violation] = []
        for checker in self.checkers:
            violations.extend(checker.quiesce(self))
        if violations:
            self._raise(violations)

    def check_quiesce(self) -> None:
        """Run the quiesce checks explicitly (CLI/test entry point)."""
        self.on_quiesce(self.env)

    def _raise(self, violations: list[Violation]) -> None:
        self.violations_raised += len(violations)
        # Give the flight recorder (when riding along) its postmortem
        # before the violation propagates.  dump() is exception-safe by
        # contract, but guard anyway: a postmortem failure must never
        # mask the audit violation it documents.
        recorder = getattr(self.env, "_recorder", None)
        if recorder is not None:
            try:
                recorder.dump(
                    "audit: " + "; ".join(
                        f"{v.layer}/{v.rule}" for v in violations),
                    note="\n".join(v.format() for v in violations))
            except Exception:
                pass
        raise AuditError(violations)

    # --------------------------------------- instrumented-module hooks
    def register_store(self, store) -> None:
        self.sim.register_store(store)

    def register_resource(self, resource) -> None:
        self.sim.register_resource(resource)

    def register_sender(self, mcp, sender) -> None:
        self.firmware.register_sender(mcp, sender)

    def register_receiver(self, mcp, src_nic: int, receiver) -> None:
        self.firmware.register_receiver(self, mcp, src_nic, receiver)

    def register_eadi(self, endpoint) -> None:
        self.bcl.register_endpoint(endpoint)

    def on_process_exit(self, node, proc) -> None:
        self.kernel.on_process_exit(self, node, proc)

    def on_eadi_teardown(self, endpoint) -> None:
        self.bcl.on_teardown(self, endpoint)

    def check_credits(self, endpoint, peer_rank: int) -> None:
        self.bcl.check_credits(self, endpoint, peer_rank)

    # ------------------------------------------------------------ report
    def report(self) -> dict:
        """Summary counters for the CLI."""
        flows = sorted(self.firmware.senders)
        arrived = sum(getattr(r, "packets_arrived", 0)
                      for r, _ in self.firmware.receivers.values())
        delivered = sum(getattr(r, "packets_delivered", 0)
                        for r, _ in self.firmware.receivers.values())
        return {
            "flows_audited": len(flows),
            "packets_arrived": arrived,
            "packets_delivered": delivered,
            "stores_tracked": sum(1 for ref in self.sim._stores
                                  if ref() is not None),
            "resources_tracked": sum(1 for ref in self.sim._resources
                                     if ref() is not None),
            "eadi_endpoints": sum(1 for ref in self.bcl._endpoints
                                  if ref() is not None),
            "quiesce_checks": self.quiesce_checks,
            "violations": self.violations_raised,
        }
