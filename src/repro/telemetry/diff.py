"""Regression attribution: compare two runs and name the stage that moved.

``diff_runs(a, b)`` takes two runs — ledgers (``repro-run/1``) or
BENCH perf artifacts (``repro-bench/1``), as paths, documents, or
:class:`~repro.telemetry.ledger.RunView` objects — and computes

* **per-stage deltas** over the critical-path stage tables, ranked by
  absolute simulated-time change, with each stage's growth expressed
  in *points of run A's total stage time* so contributions are
  additive and comparable ("`translate/pin` +38%, other stages <3%");
* **per-metric deltas** over the flattened scalar metrics the two
  runs share (percentiles, goodput, events/sec, ...).

The headline API is :meth:`RunDiff.attribution`, which renders the
one-line story a perf gate should print on failure::

    p99_us regression: +41.0% (1105.0 -> 1558.1); stage-time delta
    driven by 'translate/pin' (+38.2%), other stages <3%

Breaking Band's framing: a communication breakdown only pays for
itself when you can compare breakdowns across configurations and name
the bounding stage that changed.  This module is that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.telemetry.ledger import RunView, load_run

__all__ = ["MetricDelta", "RunDiff", "StageDelta", "WAIT_STAGE",
           "diff_runs"]

#: the critical-path catch-all stage: instants covered by no span
#: (queueing, credit stalls, recovery gaps).  When a causal stage slows
#: down, every concurrently open message waits longer, so ``wait``
#: usually grows *more* than the stage that caused it — attribution
#: therefore ranks causal stages first and reports wait movement as
#: downstream queueing rather than a cause.
WAIT_STAGE = "wait"


@dataclass
class StageDelta:
    """One stage's movement between run A and run B."""

    stage: str
    a_ns: int
    b_ns: int

    @property
    def delta_ns(self) -> int:
        return self.b_ns - self.a_ns

    def growth_pct(self, base_total_ns: int) -> float:
        """Growth in points of run A's total stage time.

        Shares a common base across stages so the per-stage numbers
        sum to the total stage-time growth; a stage that went from
        nothing to something still gets a finite, comparable number.
        """
        if base_total_ns <= 0:
            return 0.0 if self.delta_ns == 0 else float("inf")
        return 100.0 * self.delta_ns / base_total_ns


@dataclass
class MetricDelta:
    """One shared scalar metric's movement between run A and run B."""

    name: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def pct(self) -> float:
        if self.a == 0:
            return 0.0 if self.b == 0 else float("inf")
        return 100.0 * self.delta / self.a


@dataclass
class RunDiff:
    """Everything :func:`diff_runs` learned, renderable as a table."""

    a: RunView
    b: RunView
    stage_deltas: list[StageDelta] = field(default_factory=list)
    metric_deltas: list[MetricDelta] = field(default_factory=list)

    @property
    def comparable(self) -> bool:
        """Same config digest (or digests unknown) — deltas are
        regressions, not deliberate reconfiguration."""
        da, db = self.a.config_digest, self.b.config_digest
        return da is None or db is None or da == db

    @property
    def top_stage(self) -> Optional[str]:
        """The causal stage with the largest absolute simulated-time
        delta; the :data:`WAIT_STAGE` catch-all only wins when no
        traced stage moved at all."""
        movers = [d for d in self.stage_deltas if d.delta_ns != 0]
        causal = [d for d in movers if d.stage != WAIT_STAGE]
        return (causal or movers)[0].stage if movers else None

    @property
    def max_stage_drift_pct(self) -> float:
        """Largest per-stage |growth| in points of run A's total."""
        base = self.a.total_stage_ns
        return max((abs(d.growth_pct(base)) for d in self.stage_deltas),
                   default=0.0)

    def metric(self, name: str) -> Optional[MetricDelta]:
        for delta in self.metric_deltas:
            if delta.name == name:
                return delta
        return None

    def attribution(self, metric: Optional[str] = None,
                    noise_pct: float = 3.0) -> str:
        """One-line regression story for gate output.

        ``metric`` selects the headline number (e.g. ``"p99_us"``
        matches the first shared metric whose name contains it); the
        stage clause always attributes the stage-time delta.
        """
        parts = []
        chosen = None
        if metric is not None:
            chosen = self.metric(metric)
            if chosen is None:
                for delta in self.metric_deltas:
                    if metric in delta.name:
                        chosen = delta
                        break
        if chosen is not None:
            sign = "+" if chosen.delta >= 0 else ""
            word = "regression" if chosen.delta > 0 else "change"
            parts.append(f"{chosen.name} {word}: {sign}{chosen.pct:.1f}% "
                         f"({chosen.a:g} -> {chosen.b:g})")

        base = self.a.total_stage_ns
        movers = [d for d in self.stage_deltas
                  if abs(d.growth_pct(base)) >= noise_pct]
        causal = [d for d in movers if d.stage != WAIT_STAGE]
        waiting = next((d for d in movers if d.stage == WAIT_STAGE), None)
        if causal:
            lead = causal[0]
            sign = "+" if lead.delta_ns >= 0 else ""
            clause = (f"stage-time delta driven by {lead.stage!r} "
                      f"({sign}{lead.growth_pct(base):.1f}%)")
            others = causal[1:]
            if others:
                listed = ", ".join(
                    f"{d.stage!r} "
                    f"{'+' if d.delta_ns >= 0 else ''}"
                    f"{d.growth_pct(base):.1f}%" for d in others)
                clause += f", then {listed}"
            else:
                clause += f", other stages <{noise_pct:g}%"
            parts.append(clause)
            if waiting is not None:
                sign = "+" if waiting.delta_ns >= 0 else ""
                parts.append(f"downstream queueing ('wait') "
                             f"{sign}{waiting.growth_pct(base):.1f}%")
        elif waiting is not None:
            sign = "+" if waiting.delta_ns >= 0 else ""
            parts.append(f"stage-time delta is queueing ('wait' "
                         f"{sign}{waiting.growth_pct(base):.1f}%) with "
                         "no traced stage moving above noise")
        elif self.stage_deltas:
            parts.append(f"no stage moved more than {noise_pct:g}% "
                         "of total stage time")
        if not self.comparable:
            parts.append("NOTE: config digests differ "
                         f"({self.a.config_digest} vs "
                         f"{self.b.config_digest}) — runs are not "
                         "like-with-like")
        return "; ".join(parts) if parts else "no shared data to compare"

    def render(self, top: int = 10) -> str:
        """Multi-line ranked delta table (CLI output)."""
        lines = [f"run A: {self.a.label}  [{self.a.kind}"
                 + (f", digest {self.a.config_digest}" if
                    self.a.config_digest else "") + "]",
                 f"run B: {self.b.label}  [{self.b.kind}"
                 + (f", digest {self.b.config_digest}" if
                    self.b.config_digest else "") + "]"]
        if not self.comparable:
            lines.append("warning: config digests differ — deltas "
                         "reflect deliberate reconfiguration, not drift")

        if self.stage_deltas:
            base = self.a.total_stage_ns
            lines.append("")
            lines.append(f"{'stage':<18} {'A us':>12} {'B us':>12} "
                         f"{'delta us':>12} {'growth':>8}")
            for d in self.stage_deltas[:top]:
                lines.append(
                    f"{d.stage:<18} {d.a_ns / 1000.0:>12.2f} "
                    f"{d.b_ns / 1000.0:>12.2f} "
                    f"{d.delta_ns / 1000.0:>+12.2f} "
                    f"{d.growth_pct(base):>+7.1f}%")
            total_a, total_b = base, self.b.total_stage_ns
            lines.append(
                f"{'total':<18} {total_a / 1000.0:>12.2f} "
                f"{total_b / 1000.0:>12.2f} "
                f"{(total_b - total_a) / 1000.0:>+12.2f} "
                f"{(100.0 * (total_b - total_a) / total_a if total_a else 0.0):>+7.1f}%")

        shown = [d for d in self.metric_deltas if d.delta != 0][:top]
        if shown:
            lines.append("")
            lines.append(f"{'metric':<44} {'A':>14} {'B':>14} {'pct':>8}")
            for d in shown:
                lines.append(f"{d.name:<44} {d.a:>14g} {d.b:>14g} "
                             f"{d.pct:>+7.1f}%")

        lines.append("")
        if self.top_stage is not None:
            lines.append("bounding-stage attribution: "
                         + self.attribution())
        else:
            lines.append("no stage-time movement between runs")
        return "\n".join(lines)


def diff_runs(a, b) -> RunDiff:
    """Compare two runs (paths, documents, or RunViews) into a
    :class:`RunDiff`.

    Stage deltas are ranked by absolute simulated-time change; metric
    deltas cover only the scalar keys both runs expose, ranked by
    absolute percentage change.
    """
    view_a, view_b = load_run(a), load_run(b)
    diff = RunDiff(a=view_a, b=view_b)

    stages = sorted(set(view_a.stages) | set(view_b.stages))
    diff.stage_deltas = sorted(
        (StageDelta(stage=s, a_ns=view_a.stages.get(s, 0),
                    b_ns=view_b.stages.get(s, 0)) for s in stages),
        key=lambda d: (-abs(d.delta_ns), d.stage))

    shared = sorted(set(view_a.metrics) & set(view_b.metrics))
    deltas = [MetricDelta(name=k, a=view_a.metrics[k], b=view_b.metrics[k])
              for k in shared]
    diff.metric_deltas = sorted(
        deltas, key=lambda d: (-abs(d.pct) if d.pct != float("inf")
                               else float("-inf"), d.name))
    return diff
