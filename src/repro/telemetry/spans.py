"""Causal spans: one tree per message, stitched across its lifecycle.

A :class:`SpanBuilder` consumes :class:`~repro.sim.trace.TraceRecord`\\ s
(as a tracer listener, or post-hoc from a tracer's record list) and
reconstructs, per message id, the span tree of its lifecycle:

* the **root span** covers the whole message, first stage start to last
  stage end;
* **component spans** group the message's consecutive records on one
  simulated component (``node0.cpu0``, ``node0.nic.mcp``, ...) — one
  hop of the causal chain, annotated with the stack layer it belongs
  to (user/BCL, kernel, firmware, wire, upper);
* **stage spans** are the individual traced stages, the leaves.

The receiver's successful completion-queue poll is charged *before*
the event (and its message id) is known, so the matching anonymous
``poll_recv_event`` record is adopted into the tree by adjacency: the
poll whose end meets the message's ``check_recv_event`` start on the
same component.

Exports: JSONL (one span per line, parent ids intact) and Chrome
trace events where consecutive component spans are linked by flow
events (``ph:"s"``/``ph:"f"``), so Perfetto draws the causal arrow
from the send-side CPU through the NICs to the receive-side poll.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Any, Optional, Union

from repro.sim.trace import TraceRecord, Tracer

__all__ = ["Span", "SpanBuilder", "spans_to_chrome", "write_spans_jsonl",
           "LAYER_OF_CATEGORY"]

#: trace category -> stack layer (the BCL->EADI->MPI/PVM layering plus
#: the hardware below it)
LAYER_OF_CATEGORY = {
    "bcl": "bcl",
    "copy": "bcl",
    "shm": "bcl",
    "upper": "upper",
    "trap": "kernel",
    "kernel": "kernel",
    "interrupt": "kernel",
    "pio": "hw",
    "dma": "hw",
    "mcp": "firmware",
    "tlb": "firmware",
    "wire": "wire",
    "fault": "wire",
}

#: receiver-side stages charged before the message id is known, keyed
#: by the id-carrying successor stage they precede on the same component
_ADOPTABLE = {"check_recv_event": "poll_recv_event",
              "complete_send": "poll_send_event"}


@dataclass
class Span:
    """One node of a message's causal span tree."""

    span_id: str
    parent_id: Optional[str]
    name: str
    start_ns: int
    end_ns: int
    component: str = ""
    category: str = ""
    layer: str = ""
    message_id: Optional[int] = None
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def walk(self):
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        out = {"span_id": self.span_id, "parent_id": self.parent_id,
               "name": self.name, "start_ns": self.start_ns,
               "end_ns": self.end_ns, "message_id": self.message_id}
        if self.component:
            out["component"] = self.component
        if self.category:
            out["category"] = self.category
        if self.layer:
            out["layer"] = self.layer
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class SpanBuilder:
    """Accumulates trace records and stitches per-message span trees.

    Attach :meth:`on_record` as a tracer listener for live collection,
    or call :meth:`from_tracer` after a run.  A pure observer either
    way: it never touches the simulation.
    """

    def __init__(self):
        self._by_message: dict[int, list[TraceRecord]] = {}
        self._anonymous: list[TraceRecord] = []

    # ------------------------------------------------------------ intake
    def on_record(self, record: TraceRecord) -> None:
        if record.message_id is None:
            self._anonymous.append(record)
        else:
            self._by_message.setdefault(record.message_id, []).append(record)

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "SpanBuilder":
        builder = cls()
        for record in tracer.records:
            builder.on_record(record)
        return builder

    # ----------------------------------------------------------- queries
    def message_ids(self) -> list[int]:
        return sorted(self._by_message)

    def records_for(self, message_id: int) -> list[TraceRecord]:
        """The message's records plus adopted anonymous predecessors,
        in (start, end) order."""
        records = list(self._by_message.get(message_id, ()))
        adopted = self._adopt(records)
        return sorted(records + adopted,
                      key=lambda r: (r.start_ns, r.end_ns))

    def _adopt(self, records: list[TraceRecord]) -> list[TraceRecord]:
        adopted: list[TraceRecord] = []
        for successor_stage, orphan_stage in _ADOPTABLE.items():
            successors = [r for r in records if r.stage == successor_stage]
            for successor in successors:
                for orphan in self._anonymous:
                    if (orphan.stage == orphan_stage
                            and orphan.component == successor.component
                            and orphan.end_ns == successor.start_ns):
                        adopted.append(orphan)
                        break
        return adopted

    def extent(self, message_id: int) -> tuple[int, int]:
        """(first start, last end) over the message's records."""
        records = self.records_for(message_id)
        if not records:
            raise KeyError(f"no records for message {message_id}")
        return (min(r.start_ns for r in records),
                max(r.end_ns for r in records))

    # ------------------------------------------------------------- build
    def build(self, message_id: int) -> Span:
        """Stitch the message's span tree: root -> components -> stages."""
        records = self.records_for(message_id)
        if not records:
            raise KeyError(f"no records for message {message_id}")
        root = Span(span_id=f"msg{message_id}", parent_id=None,
                    name=f"message-{message_id}",
                    start_ns=records[0].start_ns,
                    end_ns=max(r.end_ns for r in records),
                    message_id=message_id)
        hop_index = 0
        current: Optional[Span] = None
        for record in records:
            if current is None or record.component != current.component:
                current = Span(
                    span_id=f"msg{message_id}.h{hop_index}",
                    parent_id=root.span_id,
                    name=record.component,
                    start_ns=record.start_ns, end_ns=record.end_ns,
                    component=record.component,
                    layer=LAYER_OF_CATEGORY.get(record.category,
                                                record.category),
                    message_id=message_id)
                root.children.append(current)
                hop_index += 1
            current.end_ns = max(current.end_ns, record.end_ns)
            stage = Span(
                span_id=f"{current.span_id}.s{len(current.children)}",
                parent_id=current.span_id,
                name=record.stage,
                start_ns=record.start_ns, end_ns=record.end_ns,
                component=record.component, category=record.category,
                layer=LAYER_OF_CATEGORY.get(record.category,
                                            record.category),
                message_id=message_id,
                attrs=dict(record.data))
            current.children.append(stage)
        return root

    def build_all(self) -> list[Span]:
        return [self.build(mid) for mid in self.message_ids()]


# ---------------------------------------------------------------- export
def write_spans_jsonl(spans: list[Span],
                      destination: Union[str, IO[str]]) -> int:
    """One JSON object per span, depth-first; returns #lines written."""
    rows = [json.dumps(span.to_dict(), sort_keys=True)
            for root in spans for span in root.walk()]
    text = "\n".join(rows) + ("\n" if rows else "")
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as fh:
            fh.write(text)
    else:
        destination.write(text)
    return len(rows)


def spans_to_chrome(spans: list[Span]) -> list[dict]:
    """Chrome trace events with causal flow links.

    Stage spans become complete events ("ph":"X") on their component's
    row; each component-to-component hop inside a message gets a flow
    start ("ph":"s") at the end of the upstream component span and a
    binding-point flow finish ("ph":"f") at the start of the
    downstream one, sharing an id — Perfetto then draws the causal
    arrows of the message's lifecycle.
    """
    events: list[dict] = []
    components: dict[str, int] = {}

    def tid_of(component: str) -> int:
        return components.setdefault(component, len(components) + 1)

    for root in spans:
        hops = [c for c in root.children if c.component]
        for hop in hops:
            for stage in hop.children:
                events.append({
                    "name": stage.name,
                    "cat": stage.category or "span",
                    "ph": "X",
                    "pid": 1,
                    "tid": tid_of(stage.component),
                    "ts": stage.start_ns / 1000.0,
                    "dur": stage.duration_ns / 1000.0,
                    "args": {"message_id": root.message_id,
                             "span_id": stage.span_id,
                             "layer": stage.layer, **stage.attrs},
                })
        for upstream, downstream in zip(hops, hops[1:]):
            flow_id = f"{root.span_id}:{upstream.span_id}"
            common = {"name": root.name, "cat": "message-flow",
                      "pid": 1, "id": flow_id}
            # Hops can overlap (e.g. trap_exit runs while the MCP
            # fetches the descriptor); the arrow must not depart after
            # it arrives, so clamp the start to the downstream start.
            depart_ns = min(upstream.end_ns, downstream.start_ns)
            events.append({**common, "ph": "s",
                           "tid": tid_of(upstream.component),
                           "ts": depart_ns / 1000.0})
            events.append({**common, "ph": "f", "bp": "e",
                           "tid": tid_of(downstream.component),
                           "ts": downstream.start_ns / 1000.0})
    for component, tid in components.items():
        events.append({"name": "thread_name", "ph": "M", "pid": 1,
                       "tid": tid, "args": {"name": component}})
    return events
