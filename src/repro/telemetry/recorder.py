"""Crash flight recorder: a bounded ring buffer dumped on failure.

A :class:`FlightRecorder` rides along on a cluster and keeps the last
``capacity`` of each of two streams in fixed-size ring buffers:

* **heartbeats** — ``(virtual time, events processed)`` pairs taken by
  the engine every time the clock advances to a new instant
  (:class:`~repro.sim.core.Environment` calls ``on_advance``);
* **span openings** — the most recent :class:`~repro.sim.trace
  .TraceRecord` observations, when tracing is on.

Like the auditor and the telemetry session it is a **pure observer**:
it schedules no events, consumes no randomness, and only ever appends
to its own deques, so a recorder-on run is byte-identical to a
recorder-off run (pinned by
``tests/regressions/test_recorder_parity.py``).  It is off by default;
turn it on globally with :func:`enable` / ``REPRO_RECORDER=1`` or per
cluster with ``Cluster(recorder=True)``.

When something dies — an audit violation fires
(:meth:`repro.audit.core.Auditor._raise`), a fault campaign fails its
oracle, or a serve run raises — the failure path calls :meth:`dump`
and the recorder writes a ``postmortem-*.json`` artifact (schema
``repro-postmortem/1``) with the last-K event timeline, the spans open
at death, and a metrics snapshot if a telemetry session was attached.
``repro postmortem <file>`` renders it.  :meth:`dump` is exception-
safe by contract: it must never mask the failure that triggered it.
"""

from __future__ import annotations

import json
import os
import time
import weakref
from collections import deque
from typing import Any, Optional

from repro.telemetry.ledger import run_meta

__all__ = ["FlightRecorder", "POSTMORTEM_SCHEMA", "disable", "enable",
           "enabled", "last", "load_postmortem", "render_postmortem"]

POSTMORTEM_SCHEMA = "repro-postmortem/1"

_ENABLED = False
#: the most recently constructed recorder, for failure paths (fuzz
#: campaigns, CLI handlers) that cannot reach the cluster that died
_LAST: Optional["weakref.ReferenceType[FlightRecorder]"] = None


def enable() -> None:
    """Turn the flight recorder on for every Cluster built afterwards.

    Exported through ``REPRO_RECORDER`` so ``--jobs N`` worker
    processes inherit the switch, same as audit and telemetry.
    """
    global _ENABLED
    _ENABLED = True
    os.environ["REPRO_RECORDER"] = "1"


def disable() -> None:
    global _ENABLED
    _ENABLED = False
    os.environ.pop("REPRO_RECORDER", None)


def enabled() -> bool:
    """The global switch (programmatic or environment)."""
    return _ENABLED or os.environ.get("REPRO_RECORDER", "") not in ("", "0")


def last() -> Optional["FlightRecorder"]:
    """The most recently constructed live recorder, if any."""
    return _LAST() if _LAST is not None else None


class FlightRecorder:
    """Bounded ring buffer of recent engine activity for one cluster."""

    def __init__(self, cluster, capacity: int = 256):
        global _LAST
        if capacity <= 0:
            raise ValueError(f"recorder capacity must be positive, "
                             f"got {capacity}")
        self.cluster = cluster
        self.capacity = capacity
        self.heartbeats: deque[tuple[int, int]] = deque(maxlen=capacity)
        self.records: deque = deque(maxlen=capacity)
        self.dumps: list[str] = []
        cluster.env._recorder = self
        # Span openings only flow when tracing is on; the recorder does
        # not force the tracer (that would change per-event cost and
        # belongs to the telemetry switch), it just listens if present.
        cluster.tracer.add_listener(self._on_record)
        _LAST = weakref.ref(self)

    # ------------------------------------------------------------ intake
    def on_advance(self, when: int, n_events: int) -> None:
        """Engine heartbeat: the clock is advancing to ``when`` after
        ``n_events`` processed events."""
        self.heartbeats.append((when, n_events))

    def _on_record(self, record) -> None:
        self.records.append(record)

    def detach(self) -> None:
        """Stop observing (listener off, env hook cleared)."""
        self.cluster.tracer.remove_listener(self._on_record)
        if getattr(self.cluster.env, "_recorder", None) is self:
            self.cluster.env._recorder = None

    # ----------------------------------------------------------- analysis
    def open_messages(self) -> dict[int, dict[str, Any]]:
        """Last observed stage per message among the retained records.

        A message whose final lifecycle stage never appeared in the
        window was in flight at death — this is the "open spans" view
        of the postmortem.
        """
        latest: dict[int, dict[str, Any]] = {}
        for rec in self.records:
            if rec.message_id is None:
                continue
            latest[rec.message_id] = {
                "message_id": rec.message_id,
                "stage": rec.stage,
                "category": rec.category,
                "component": rec.component,
                "end_ns": rec.end_ns,
            }
        return latest

    def to_doc(self, reason: str,
               note: Optional[str] = None) -> dict[str, Any]:
        """Assemble the ``repro-postmortem/1`` document."""
        env = self.cluster.env
        doc: dict[str, Any] = {
            "schema": POSTMORTEM_SCHEMA,
            "reason": reason,
            "t_ns": env.now,
            "events_processed": env.events_processed,
            "meta": run_meta(None),
            "capacity": self.capacity,
            "heartbeats": [[when, n] for when, n in self.heartbeats],
            "records": [
                {"start_ns": r.start_ns, "end_ns": r.end_ns,
                 "category": r.category, "stage": r.stage,
                 "component": r.component, "message_id": r.message_id}
                for r in self.records
            ],
            "open_messages": sorted(self.open_messages().values(),
                                    key=lambda m: m["message_id"]),
        }
        if note:
            doc["note"] = note
        telemetry = getattr(env, "_telemetry", None)
        if telemetry is not None:
            try:
                doc["metrics"] = json.loads(telemetry.registry.to_json())
            except Exception:
                # The snapshot is best-effort garnish on a crash path.
                doc["metrics"] = None
        return doc

    def dump(self, reason: str, directory: Optional[str] = None,
             path: Optional[str] = None,
             note: Optional[str] = None) -> Optional[str]:
        """Write a postmortem artifact; returns its path.

        Exception-safe: any I/O or serialization failure is swallowed
        (returning ``None``) because this runs on paths that are
        already raising — a postmortem must never mask the failure it
        documents.  ``REPRO_POSTMORTEM_DIR`` overrides the default
        destination (the working directory).
        """
        try:
            if path is None:
                directory = (directory
                             or os.environ.get("REPRO_POSTMORTEM_DIR")
                             or ".")
                slug = "".join(c if c.isalnum() or c in "-_" else "-"
                               for c in reason.lower())[:40].strip("-")
                stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
                base = f"postmortem-{slug or 'failure'}-{stamp}"
                path = os.path.join(directory, base + ".json")
                n = 0
                while os.path.exists(path):
                    n += 1
                    path = os.path.join(directory, f"{base}-{n}.json")
            doc = self.to_doc(reason, note=note)
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except Exception:
            return None
        self.dumps.append(path)
        return path


# ------------------------------------------------------------- inspection
def load_postmortem(path) -> dict[str, Any]:
    with open(os.fspath(path), encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != POSTMORTEM_SCHEMA:
        raise ValueError(f"{path}: unknown schema {doc.get('schema')!r} "
                         f"(expected {POSTMORTEM_SCHEMA!r})")
    return doc


def render_postmortem(doc: dict[str, Any], last: int = 20) -> str:
    """Human-readable postmortem view (``repro postmortem`` output)."""
    lines = [f"postmortem: {doc.get('reason', '?')}",
             f"  died at t={doc.get('t_ns', 0)} ns after "
             f"{doc.get('events_processed', 0)} events"]
    if doc.get("note"):
        lines.append(f"  note: {doc['note']}")
    meta = doc.get("meta") or {}
    if meta.get("git_sha"):
        lines.append(f"  git {meta['git_sha'][:12]}  "
                     f"python {meta.get('python', '?')}")

    beats = doc.get("heartbeats") or []
    if beats:
        lines.append("")
        lines.append(f"heartbeats (last {min(last, len(beats))} of "
                     f"{len(beats)} retained clock advances):")
        for when, n in beats[-last:]:
            lines.append(f"  t={when:>14} ns  after {n:>10} events")

    records = doc.get("records") or []
    if records:
        lines.append("")
        lines.append(f"recent spans (last {min(last, len(records))} of "
                     f"{len(records)} retained):")
        for rec in records[-last:]:
            mid = rec.get("message_id")
            tag = f"  msg={mid}" if mid is not None else ""
            lines.append(
                f"  [{rec['start_ns']:>12} -> {rec['end_ns']:>12} ns] "
                f"{rec['component']:<22} {rec['stage']}{tag}")

    open_messages = doc.get("open_messages") or []
    if open_messages:
        lines.append("")
        lines.append(f"messages seen in the window ({len(open_messages)}), "
                     "last observed stage:")
        for msg in open_messages[:last]:
            lines.append(f"  msg={msg['message_id']:<6} last stage "
                         f"{msg['stage']!r} ({msg['component']}) "
                         f"at t={msg['end_ns']} ns")

    metrics = (doc.get("metrics") or {}).get("metrics") if \
        isinstance(doc.get("metrics"), dict) else None
    if metrics:
        nonzero = [m for m in metrics
                   if m.get("value") or m.get("count")]
        lines.append("")
        lines.append(f"metrics snapshot: {len(metrics)} series "
                     f"({len(nonzero)} non-zero)")
    return "\n".join(lines)
