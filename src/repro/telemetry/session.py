"""Per-cluster telemetry session: spans + metrics + critical paths.

A :class:`TelemetrySession` attaches to one
:class:`~repro.cluster.Cluster` and wires the whole observability
layer together:

* forces the cluster's tracer on and feeds every record to a
  :class:`~repro.telemetry.spans.SpanBuilder` (causal span trees) and
  to live stage/wire instruments in a
  :class:`~repro.telemetry.metrics.MetricsRegistry`;
* asks each layer to register its instruments — kernel path counters,
  MCP reliability counters, NIC tables, link occupancy — and exposes
  itself on the environment (``env._telemetry``) so runtime-created
  upper-layer endpoints (EADI) self-register the same way auditor
  checkers do;
* serves the analysis queries behind ``repro observe``:
  per-message critical paths, the top-K slowest messages, and the
  one-way latency distribution.

The session is a pure observer: it schedules no simulation events and
consumes no randomness, so a telemetry-enabled run is byte-identical
to a disabled one (pinned by ``tests/regressions/test_telemetry_parity``).
"""

from __future__ import annotations

from typing import Optional

from repro.sim.trace import TraceRecord
from repro.telemetry.critical_path import (
    CriticalPathReport,
    attribute_records,
    canonical_stage,
)
from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.spans import Span, SpanBuilder, spans_to_chrome

__all__ = ["TelemetrySession"]


class TelemetrySession:
    """Observability for one cluster: spans, metrics, critical paths."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.registry = MetricsRegistry()
        self.spans = SpanBuilder()
        self._latency_hist: Histogram = self.registry.histogram(
            "repro_message_latency_ns",
            "end-to-end message lifecycle span in simulated ns")
        self._wire_hist: Histogram = self.registry.histogram(
            "repro_wire_payload_bytes",
            "payload bytes per injected wire packet")
        self._observed: set[int] = set()
        self._eadi_seq = 0

        cluster.tracer.enabled = True
        cluster.tracer.add_listener(self._on_record)
        # Runtime-created endpoints (EADI) find the session here, the
        # same way protocol objects find the auditor via env._audit.
        cluster.env._telemetry = self

        for node in cluster.nodes:
            if node.kernel is not None:
                node.kernel.register_metrics(self.registry)
            if node.nic is not None:
                node.nic.register_metrics(self.registry)
        for mcp in cluster.mcps:
            mcp.register_metrics(self.registry)
        cluster.network.register_metrics(self.registry)

    # ------------------------------------------------------------ intake
    def _on_record(self, record: TraceRecord) -> None:
        self.spans.on_record(record)
        if record.duration_ns > 0:
            self.registry.counter(
                "repro_stage_ns_total",
                "wall nanoseconds attributed to each canonical stage",
                stage=canonical_stage(record)).inc(record.duration_ns)
        if record.category == "wire":
            self._wire_hist.observe(record.data.get("nbytes", 0))

    def register_eadi(self, endpoint) -> None:
        """Upper-layer registration hook, called by EadiEndpoint.

        The ``ep`` label keeps endpoints of successive jobs (which can
        reuse ranks) as distinct series.
        """
        self._eadi_seq += 1
        labels = {"rank": endpoint.rank, "ep": self._eadi_seq}
        self.registry.register_callback(
            "repro_eadi_credit_stalls_total",
            lambda ep=endpoint: ep.credit_stalls,
            "sends that blocked waiting for an eager credit",
            kind="counter", **labels)
        self.registry.register_callback(
            "repro_eadi_unexpected_total",
            lambda ep=endpoint: ep.unexpected_count,
            "eager arrivals queued before a matching receive was posted",
            kind="counter", **labels)
        endpoint._stall_hist = self.registry.histogram(
            "repro_eadi_credit_stall_ns",
            "sim time spent parked per eager-credit stall",
            **labels)

    # ----------------------------------------------------------- queries
    def _refresh(self) -> None:
        """Fold newly completed messages into the latency histogram."""
        for mid in self.spans.message_ids():
            if mid in self._observed:
                continue
            start_ns, end_ns = self.spans.extent(mid)
            self._latency_hist.observe(end_ns - start_ns)
            self._observed.add(mid)

    @property
    def latency_histogram(self) -> Histogram:
        self._refresh()
        return self._latency_hist

    def message_ids(self) -> list[int]:
        return self.spans.message_ids()

    def critical_path(self, message_id: int) -> CriticalPathReport:
        return attribute_records(message_id,
                                 self.spans.records_for(message_id))

    def reports(self) -> list[CriticalPathReport]:
        return [self.critical_path(mid) for mid in self.message_ids()]

    def top_slowest(self, k: int) -> list[CriticalPathReport]:
        """The K slowest messages by end-to-end span, slowest first."""
        reports = self.reports()
        reports.sort(key=lambda r: (-r.total_ns, r.message_id))
        return reports[:k]

    def span_tree(self, message_id: int) -> Span:
        return self.spans.build(message_id)

    def span_trees(self) -> list[Span]:
        return self.spans.build_all()

    def chrome_events(self) -> list[dict]:
        return spans_to_chrome(self.span_trees())

    # ------------------------------------------------------------ ledger
    def to_ledger(self, kind: str = "run", *, seed: Optional[int] = None,
                  wall_s: Optional[float] = None,
                  extra: Optional[dict] = None) -> dict:
        """Snapshot this session as a ``repro-run/1`` ledger document.

        The stage table comes from the per-message critical-path
        reports (which include wire time and wait gaps, so it sums to
        end-to-end latency); when no message completed, it falls back
        to the raw ``repro_stage_ns_total`` counters.  Percentiles are
        the exact nearest-rank p50/p99/p99.9 of every populated
        histogram in the registry.
        """
        import json as _json

        from repro.telemetry.ledger import make_ledger

        stages: dict[str, int] = {}
        for report in self.reports():
            for share in report.stages:
                stages[share.stage] = stages.get(share.stage, 0) \
                    + share.ns
        if not stages:
            for instrument in self.registry:
                if instrument.name != "repro_stage_ns_total":
                    continue
                stage = dict(instrument.labels).get("stage", "?")
                stages[stage] = stages.get(stage, 0) \
                    + int(instrument.value())

        self._refresh()
        percentiles: dict[str, dict[str, float]] = {}
        for instrument in self.registry:
            if not isinstance(instrument, Histogram) or not instrument.count:
                continue
            labels = dict(instrument.labels)
            key = instrument.name
            if labels:
                key += "{" + ",".join(f"{k}={v}" for k, v in
                                      sorted(labels.items())) + "}"
            percentiles[key] = {
                "p50": instrument.quantile(0.50),
                "p99": instrument.quantile(0.99),
                "p999": instrument.quantile(0.999),
            }

        return make_ledger(
            kind, seed=seed, cfg=self.cluster.cfg,
            events=self.cluster.env.events_processed, wall_s=wall_s,
            stages=stages, percentiles=percentiles,
            metrics=_json.loads(self.registry.to_json())["metrics"],
            extra=extra)

    def detach(self) -> None:
        """Stop observing (listener off, env hook cleared)."""
        self.cluster.tracer.remove_listener(self._on_record)
        if getattr(self.cluster.env, "_telemetry", None) is self:
            self.cluster.env._telemetry = None
