"""Critical-path attribution: where one message spent its time.

Walks a completed message's trace (via :class:`SpanBuilder`) and
attributes **every nanosecond** of its end-to-end interval to exactly
one canonical stage — the per-message version of the paper's Figure 7
breakdown (trap, check, translate/pin, SRQ fill, wire, DMA, poll ...).

Attribution is a sweep over the record timeline: at each instant the
innermost active record (latest start, ties to latest end) wins, so
e.g. the DMA charged inside an MCP processing window is attributed to
DMA, not double-counted.  Instants covered by no record are charged to
``wire`` when the message was last seen at the wire-injection engine
(link propagation/serialization is deliberately not re-traced per
hop), and to ``wait`` otherwise (queueing, go-back-N stalls).  The
per-stage nanoseconds therefore sum to the end-to-end interval
*exactly* — the breakdown's total is the measured latency, not an
approximation of it.

Anomaly flags are derived from the same records: pin-down misses on
the send path (eviction thrashing shows up here), injected faults, and
wait-dominated messages (recovery stalls).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.time import ns_to_us
from repro.sim.trace import TraceRecord

__all__ = ["CriticalPathReport", "StageShare", "attribute_records",
           "FIGURE7_STAGES", "canonical_stage"]

#: the stage set of the paper's Figure 7, in path order
FIGURE7_STAGES = ("compose", "trap", "check", "translate/pin", "SRQ fill",
                  "mcp", "wire", "dma", "poll", "event check")

#: raw stage name -> canonical group (checked before the category map)
_STAGE_GROUP = {
    "compose_send_request": "compose",
    "compose_recv_post": "compose",
    "compose_bind": "compose",
    "compose_rma_read": "compose",
    "trap_enter": "trap",
    "trap_exit": "trap",
    "security_checks": "check",
    "nic_context_check": "check",
    "pindown_lookup": "translate/pin",
    "pindown_miss": "translate/pin",
    "pin_pool_buffer": "translate/pin",
    "map_shm_ring": "translate/pin",
    "fill_send_descriptor": "SRQ fill",
    "fill_recv_descriptor": "SRQ fill",
    "fill_rma_request": "SRQ fill",
    "init_port": "SRQ fill",
    "poll_recv_event": "poll",
    "poll_send_event": "poll",
    "check_recv_event": "event check",
    "complete_send": "event check",
    # NIC-offloaded collectives: posting the descriptor is compose
    # work, reaping the completion is event-check work (the category
    # of both is "bcl", which would lump them into compose).
    "coll_post": "compose",
    "coll_complete": "event check",
    "shm_post": "shm",
    "shm_check": "poll",
}

#: trace category -> canonical group, for stages not listed above
_CATEGORY_GROUP = {
    "trap": "trap",
    "kernel": "check",
    "pio": "SRQ fill",
    "mcp": "mcp",
    "tlb": "translate/pin",
    "wire": "wire",
    "dma": "dma",
    "copy": "copy",
    "shm": "shm",
    "bcl": "compose",
    "upper": "upper",
    "interrupt": "interrupt",
}


def canonical_stage(record: TraceRecord) -> str:
    """Map one trace record to its Figure-7 stage group."""
    group = _STAGE_GROUP.get(record.stage)
    if group is None:
        group = _CATEGORY_GROUP.get(record.category, record.category)
    return group


@dataclass
class StageShare:
    """One canonical stage's share of a message's end-to-end time."""

    stage: str
    ns: int
    total_ns: int

    @property
    def us(self) -> float:
        return ns_to_us(self.ns)

    @property
    def share(self) -> float:
        return self.ns / self.total_ns if self.total_ns else 0.0


@dataclass
class CriticalPathReport:
    """Per-stage wall time of one message, summing exactly to total."""

    message_id: int
    start_ns: int
    end_ns: int
    stages: list[StageShare] = field(default_factory=list)
    anomalies: list[str] = field(default_factory=list)

    @property
    def total_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def total_us(self) -> float:
        return ns_to_us(self.total_ns)

    @property
    def bounding_stage(self) -> Optional[str]:
        """The stage that bounded end-to-end latency (max wall share)."""
        if not self.stages:
            return None
        return max(self.stages, key=lambda s: (s.ns, s.stage)).stage

    def stage_ns(self, stage: str) -> int:
        return sum(s.ns for s in self.stages if s.stage == stage)

    def format(self, indent: str = "  ") -> str:
        lines = [f"message {self.message_id}: "
                 f"{self.total_us:.3f} us end-to-end"]
        for share in self.stages:
            marker = " <- bounding" if share.stage == self.bounding_stage \
                else ""
            lines.append(f"{indent}{share.stage:<14s} {share.us:8.3f} us "
                         f"{100 * share.share:5.1f}%{marker}")
        for anomaly in self.anomalies:
            lines.append(f"{indent}! {anomaly}")
        return "\n".join(lines)


def attribute_records(message_id: int,
                      records: list[TraceRecord]) -> CriticalPathReport:
    """Sweep the message's records and attribute every nanosecond."""
    if not records:
        raise ValueError(f"message {message_id} has no trace records")
    timed = [r for r in records if r.duration_ns > 0]
    start = min(r.start_ns for r in records)
    end = max(r.end_ns for r in records)
    report = CriticalPathReport(message_id=message_id,
                                start_ns=start, end_ns=end)

    boundaries = sorted({start, end}
                        | {r.start_ns for r in timed}
                        | {r.end_ns for r in timed})
    attributed: dict[str, int] = {}
    order: list[str] = []
    last_group: Optional[str] = None
    for lo, hi in zip(boundaries, boundaries[1:]):
        active = [r for r in timed if r.start_ns <= lo and r.end_ns >= hi]
        if active:
            winner = max(active, key=lambda r: (r.start_ns, r.end_ns))
            group = canonical_stage(winner)
            last_group = group
        else:
            # A gap: in flight after wire injection, else queued/stalled.
            group = "wire" if last_group == "wire" else "wait"
        if group not in attributed:
            attributed[group] = 0
            order.append(group)
        attributed[group] += hi - lo
    total = end - start
    report.stages = [StageShare(stage=g, ns=attributed[g], total_ns=total)
                     for g in order]

    # ----------------------------------------------------------- anomalies
    misses = [r for r in records if r.stage == "pindown_miss"]
    if misses:
        miss_ns = sum(r.duration_ns for r in misses)
        report.anomalies.append(
            f"pin-down miss on the send path ({ns_to_us(miss_ns):.2f} us "
            "pin/translate work; repeated misses indicate eviction "
            "thrashing)")
    faults = [r for r in records if r.category == "fault"]
    if faults:
        kinds = sorted({r.stage for r in faults})
        report.anomalies.append(
            f"{len(faults)} fault(s) injected on this message's path "
            f"({', '.join(kinds)})")
    wait_ns = attributed.get("wait", 0)
    if total and wait_ns / total > 0.25:
        report.anomalies.append(
            f"wait-dominated: {100 * wait_ns / total:.0f}% of end-to-end "
            "time unattributed to any stage (queueing or go-back-N "
            "recovery stall)")
    return report
