"""The ``repro observe`` workload runner and report renderer.

Runs a telemetry-enabled ping-pong on a fresh cluster and renders the
operator's view of it: a latency summary (exact p50/p95/p99 from the
metrics registry), the aggregate per-stage critical-path breakdown
(the per-message Figure 7), the top-K slowest messages with their
bounding stage and anomaly flags, and per-message drill-downs.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.time import ns_to_us
from repro.telemetry.critical_path import FIGURE7_STAGES, CriticalPathReport
from repro.telemetry.session import TelemetrySession

__all__ = ["run_ping_pong", "render_summary", "render_top",
           "render_drilldown"]


def run_ping_pong(nbytes: int = 0, messages: int = 4,
                  intra_node: bool = False, drop: float = 0.0,
                  seed: int = 1):
    """A telemetry-enabled 2-node (or intra-node) ping-pong.

    Returns ``(cluster, sample)``; the telemetry session is
    ``cluster.telemetry``.
    """
    from repro.cluster import Cluster
    from repro.instrument.measure import measure_intra_node, measure_one_way

    kwargs = {}
    if drop > 0.0:
        from repro.config import LOSSY_DAWNING
        from repro.faults import FaultPlan
        kwargs = {"cfg": LOSSY_DAWNING,
                  "fault_plan": FaultPlan(seed=seed, drop_rate=drop)}
    if intra_node:
        cluster = Cluster(n_nodes=1, telemetry=True, **kwargs)
        sample = measure_intra_node(cluster, nbytes, repeats=messages,
                                    warmup=1)
    else:
        cluster = Cluster(n_nodes=2, telemetry=True, **kwargs)
        sample = measure_one_way(cluster, nbytes, repeats=messages,
                                 warmup=1)
    return cluster, sample


def _ordered_stages(reports: list[CriticalPathReport]) -> list[str]:
    """Figure-7 canonical order first, then extras by appearance."""
    seen: list[str] = []
    for report in reports:
        for share in report.stages:
            if share.stage not in seen:
                seen.append(share.stage)
    ordered = [s for s in FIGURE7_STAGES if s in seen]
    ordered += [s for s in seen if s not in ordered]
    return ordered


def render_summary(session: TelemetrySession, nbytes: int) -> str:
    """Latency distribution + aggregate critical-path breakdown."""
    hist = session.latency_histogram
    reports = session.reports()
    lines = [f"observe: {hist.count} message lifecycles, {nbytes} B payload"]
    if hist.count:
        lines.append(
            f"  one-way latency  p50 {ns_to_us(hist.p50):8.3f} us   "
            f"p95 {ns_to_us(hist.p95):8.3f} us   "
            f"p99 {ns_to_us(hist.p99):8.3f} us")
    if not reports:
        lines.append("  (no traced messages)")
        return "\n".join(lines)
    lines.append("")
    lines.append("critical path (aggregate across messages):")
    lines.append(f"  {'stage':<14s} {'mean us':>9s} {'total us':>9s} "
                 f"{'share':>6s}")
    total_all = sum(r.total_ns for r in reports)
    bounding_votes: dict[str, int] = {}
    for report in reports:
        stage = report.bounding_stage
        if stage is not None:
            bounding_votes[stage] = bounding_votes.get(stage, 0) + 1
    for stage in _ordered_stages(reports):
        ns_values = [r.stage_ns(stage) for r in reports]
        total_ns = sum(ns_values)
        mean_us = ns_to_us(total_ns) / len(reports)
        share = total_ns / total_all if total_all else 0.0
        lines.append(f"  {stage:<14s} {mean_us:9.3f} "
                     f"{ns_to_us(total_ns):9.3f} {100 * share:5.1f}%")
    if bounding_votes:
        top = max(sorted(bounding_votes), key=lambda s: bounding_votes[s])
        lines.append(f"  bounding stage: {top} "
                     f"(bounded {bounding_votes[top]}/{len(reports)} "
                     "messages)")
    anomalies = [(r.message_id, a) for r in reports for a in r.anomalies]
    if anomalies:
        lines.append("anomalies:")
        for mid, anomaly in anomalies:
            lines.append(f"  message {mid}: {anomaly}")
    return "\n".join(lines)


def render_top(session: TelemetrySession, k: int) -> str:
    """The K slowest messages, slowest first."""
    lines = [f"top {k} slowest messages:",
             f"  {'id':>6s} {'total us':>9s}  {'bounding stage':<14s} "
             "anomalies"]
    for report in session.top_slowest(k):
        flags = "; ".join(report.anomalies) or "-"
        lines.append(f"  {report.message_id:>6d} {report.total_us:9.3f}  "
                     f"{report.bounding_stage or '-':<14s} {flags}")
    return "\n".join(lines)


def render_drilldown(session: TelemetrySession, message_id: int) -> str:
    """Per-stage breakdown + span tree of one message."""
    report = session.critical_path(message_id)
    lines = [report.format()]
    lines.append("span tree:")
    root = session.span_tree(message_id)
    origin = root.start_ns
    for span in root.walk():
        depth = span.span_id.count(".")
        label = span.component or span.name
        if span.parent_id is not None and span.component:
            label = span.name if depth >= 2 else span.component
        lines.append(
            f"  {'  ' * depth}[{ns_to_us(span.start_ns - origin):8.3f} -> "
            f"{ns_to_us(span.end_ns - origin):8.3f} us] {label}"
            + (f"  ({span.layer})" if span.layer else ""))
    return "\n".join(lines)
