"""Message-lifecycle telemetry: causal spans, metrics, critical paths.

The paper's headline numbers are *breakdowns* — 7.04 us of send
overhead against 1.01 us of receive, one trap on send and zero on
receive, a 4.17 us semi-user tax inside an 18.3 us 0-byte one-way —
and this package makes those breakdowns a first-class, per-message
query instead of an aggregate experiment output:

* :mod:`repro.telemetry.spans` — every message gets a causal span
  tree stitched across its lifecycle (send trap -> checks ->
  pin-down -> SRQ PIO fill -> wire -> DMA -> poll), exported as JSONL
  and as flow-linked Chrome/Perfetto events;
* :mod:`repro.telemetry.metrics` — a registry of counters, gauges and
  log-scaled histograms (exact p50/p95/p99) that the kernel, firmware,
  NIC, link and upper layers register into, with Prometheus-style text
  exposition and JSON export;
* :mod:`repro.telemetry.critical_path` — walks a completed message's
  records and attributes every nanosecond to a canonical Figure-7
  stage, naming the stage that bounded end-to-end latency and flagging
  anomalies (pin-down thrashing, injected faults, recovery stalls);
* :mod:`repro.telemetry.session` / ``repro observe`` — the per-cluster
  session and operator CLI over all of the above;
* :mod:`repro.telemetry.ledger` — self-describing ``repro-run/1``
  run artifacts (config digest, stage table, exact percentiles) with
  BENCH perf files readable as a special case;
* :mod:`repro.telemetry.diff` — ``repro diff`` / :func:`diff_runs`
  regression attribution between two ledgers, naming the stage whose
  share grew;
* :mod:`repro.telemetry.recorder` — the crash flight recorder
  (``REPRO_RECORDER=1``): bounded rings of recent heartbeats and span
  openings, dumped to ``postmortem-*.json`` on audit violations,
  oracle failures and serve crashes.

Enable globally with :func:`enable` (or ``REPRO_TELEMETRY=1``,
inherited by ``--jobs N`` workers), or per cluster with
``Cluster(telemetry=True)``.  Telemetry is a **pure observer**: it
schedules no events and consumes no randomness, so an enabled run is
byte-identical to a disabled one (pinned by
``tests/regressions/test_telemetry_parity.py``), and disabled runs
don't execute a single telemetry instruction on the hot path.
"""

from __future__ import annotations

import os

from repro.telemetry.critical_path import (
    FIGURE7_STAGES,
    CriticalPathReport,
    StageShare,
    attribute_records,
    canonical_stage,
)
from repro.telemetry.diff import MetricDelta, RunDiff, StageDelta, diff_runs
from repro.telemetry.ledger import (
    RunView,
    config_digest,
    load_run,
    make_ledger,
    write_ledger,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.recorder import (
    FlightRecorder,
    load_postmortem,
    render_postmortem,
)
from repro.telemetry.session import TelemetrySession
from repro.telemetry.spans import (
    Span,
    SpanBuilder,
    spans_to_chrome,
    write_spans_jsonl,
)

__all__ = [
    "Counter",
    "CriticalPathReport",
    "FIGURE7_STAGES",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricDelta",
    "MetricsRegistry",
    "RunDiff",
    "RunView",
    "Span",
    "SpanBuilder",
    "StageDelta",
    "StageShare",
    "TelemetrySession",
    "attribute_records",
    "canonical_stage",
    "config_digest",
    "diff_runs",
    "disable",
    "enable",
    "enabled",
    "load_postmortem",
    "load_run",
    "make_ledger",
    "render_postmortem",
    "spans_to_chrome",
    "write_ledger",
    "write_spans_jsonl",
]

_ENABLED = False


def enable() -> None:
    """Turn telemetry on for every Cluster built afterwards.

    Also exported through ``REPRO_TELEMETRY`` so ``--jobs N`` worker
    processes inherit the switch.
    """
    global _ENABLED
    _ENABLED = True
    os.environ["REPRO_TELEMETRY"] = "1"


def disable() -> None:
    global _ENABLED
    _ENABLED = False
    os.environ.pop("REPRO_TELEMETRY", None)


def enabled() -> bool:
    """The global switch (programmatic or environment)."""
    return _ENABLED or os.environ.get("REPRO_TELEMETRY", "") not in ("", "0")
