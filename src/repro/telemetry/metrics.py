"""Metrics registry: counters, gauges and log-scaled histograms.

Every layer of the simulated stack registers its instruments here —
the kernel's :class:`~repro.instrument.counters.PathCounters`, the
firmware's reliability tallies, NIC/link occupancy, and the upper
layers' credit accounting — so one collection pass can answer "what
did this run do" without each experiment hand-rolling its own
aggregation.  Two export formats:

* Prometheus-style text exposition (:meth:`MetricsRegistry.render_prometheus`),
  with cumulative ``_bucket`` lines for histograms plus exact
  ``quantile`` samples;
* a JSON document (:meth:`MetricsRegistry.to_json`) for programmatic
  consumers and tests.

Instruments are either *owned* (mutated through ``inc``/``set``/
``observe``) or *callback-backed* (the registry reads a live source —
an existing counters object — at collection time).  Callback backing
is how the ad-hoc ``PathCounters``/``ReliabilityCounters`` are
absorbed without changing their public API: they keep their fields,
and the registry samples them.

Everything here is a pure observer: no instrument schedules simulation
events or consumes randomness, so registering metrics never perturbs a
run.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Callable, Iterable, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelItems = tuple[tuple[str, str], ...]


def _label_items(labels: dict[str, Any]) -> LabelItems:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition spec:
    backslash, double quote and newline must be written as ``\\\\``,
    ``\\"`` and ``\\n`` or the output is unparseable."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    """HELP text escaping: backslash and newline (quotes are legal)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(items: LabelItems, extra: LabelItems = ()) -> str:
    merged = items + extra
    if not merged:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in merged)
    return "{" + body + "}"


class Instrument:
    """Common identity for one (name, labels) time series."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: LabelItems):
        self.name = name
        self.help = help
        self.labels = labels

    def value(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(Instrument):
    """Monotonically increasing tally."""

    kind = "counter"

    def __init__(self, name: str, help: str, labels: LabelItems,
                 fn: Optional[Callable[[], float]] = None):
        super().__init__(name, help, labels)
        self._value = 0.0
        self._fn = fn

    def inc(self, amount: float = 1.0) -> None:
        if self._fn is not None:
            raise ValueError(f"{self.name} is callback-backed, not settable")
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self._value += amount

    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value


class Gauge(Instrument):
    """Point-in-time value; settable or callback-backed."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labels: LabelItems,
                 fn: Optional[Callable[[], float]] = None):
        super().__init__(name, help, labels)
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError(f"{self.name} is callback-backed, not settable")
        self._value = float(value)

    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value


class Histogram(Instrument):
    """Latency/size distribution with log-scaled buckets.

    Raw observations are retained (simulation scale makes this cheap),
    so quantiles are *exact* — nearest-rank over the sorted sample —
    rather than bucket-interpolated; the log2 buckets exist only for
    the Prometheus exposition.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str, labels: LabelItems,
                 on_clamp: Optional[Callable[["Histogram", float],
                                             None]] = None):
        super().__init__(name, help, labels)
        self.values: list[float] = []
        self._sorted: Optional[list[float]] = None
        self._on_clamp = on_clamp

    def observe(self, value: float) -> None:
        value = float(value)
        if value < 0.0:
            # A negative duration is a measurement bug (clock misuse,
            # span ended before it started); the log2 buckets start at
            # 1.0 and would mis-bucket it.  Clamp to zero and surface
            # the problem through the registry instead of skewing the
            # distribution silently.
            if self._on_clamp is not None:
                self._on_clamp(self, value)
            value = 0.0
        self.values.append(value)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return sum(self.values)

    def quantile(self, q: float) -> float:
        """Exact nearest-rank quantile; 0.0 on an empty histogram."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if not self.values:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self.values)
        # nearest-rank: smallest value with cumulative share >= q
        rank = math.ceil(q * len(self._sorted))
        return self._sorted[max(rank, 1) - 1]

    def percentile(self, p: float) -> float:
        """Exact nearest-rank percentile for ``p`` in [0, 100];
        0.0 on an empty histogram."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} outside [0, 100]")
        return self.quantile(p / 100.0)

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def buckets(self) -> list[tuple[float, int]]:
        """Cumulative (upper_bound, count) pairs over log2 buckets.

        Bounds are powers of two from 1 up to the smallest power
        covering the largest observation, capped to keep the exposition
        bounded; the final bound is +inf.
        """
        bounds: list[float] = []
        bound = 1.0
        top = max(self.values, default=1.0)
        while bound < top and len(bounds) < 64:
            bounds.append(bound)
            bound *= 2.0
        bounds.append(bound)
        out: list[tuple[float, int]] = []
        for upper in bounds:
            out.append((upper, sum(1 for v in self.values if v <= upper)))
        out.append((float("inf"), len(self.values)))
        return out

    def value(self) -> float:
        return self.sum


class MetricsRegistry:
    """Get-or-create registry keyed on (name, labels)."""

    def __init__(self):
        self._instruments: dict[tuple[str, LabelItems], Instrument] = {}
        self._help: dict[str, str] = {}
        self._kind: dict[str, str] = {}
        #: human-readable data-quality warnings (clamped observations),
        #: newest last; purely observational, never consumed by the run
        self.warnings: list[str] = []

    def _on_histogram_clamp(self, histogram: Histogram,
                            value: float) -> None:
        self.counter("repro_metrics_clamped_total",
                     "negative histogram observations clamped to zero",
                     metric=histogram.name).inc()
        self.warnings.append(
            f"histogram {histogram.name}{_render_labels(histogram.labels)}: "
            f"negative observation {value:g} clamped to 0")

    # ------------------------------------------------------------- create
    def _get_or_create(self, cls, name: str, help: str,
                       labels: dict[str, Any],
                       fn: Optional[Callable[[], float]] = None):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        items = _label_items(labels)
        key = (name, items)
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"{name} already registered as {existing.kind}")
            return existing
        if name in self._kind and self._kind[name] != cls.kind:
            raise ValueError(
                f"{name} already registered as {self._kind[name]}, "
                f"not {cls.kind}")
        if cls is Histogram:
            instrument = cls(name, help, items,
                             on_clamp=self._on_histogram_clamp)
        else:
            instrument = cls(name, help, items, fn=fn)
        self._instruments[key] = instrument
        self._kind[name] = cls.kind
        if help or name not in self._help:
            self._help[name] = help or self._help.get(name, "")
        return instrument

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  **labels: Any) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels)

    def register_callback(self, name: str, fn: Callable[[], float],
                          help: str = "", kind: str = "counter",
                          **labels: Any) -> Instrument:
        """Register a callback-backed series read at collection time."""
        cls = {"counter": Counter, "gauge": Gauge}.get(kind)
        if cls is None:
            raise ValueError(f"callback metrics must be counter or gauge, "
                             f"not {kind!r}")
        return self._get_or_create(cls, name, help, labels, fn=fn)

    # ------------------------------------------------------------ access
    def __iter__(self) -> Iterable[Instrument]:
        return iter(sorted(self._instruments.values(),
                           key=lambda i: (i.name, i.labels)))

    def __len__(self) -> int:
        return len(self._instruments)

    def get(self, name: str, **labels: Any) -> Optional[Instrument]:
        return self._instruments.get((name, _label_items(labels)))

    # ------------------------------------------------------------ export
    def render_prometheus(self) -> str:
        """Prometheus text exposition format."""
        lines: list[str] = []
        seen_meta: set[str] = set()
        for instrument in self:
            if instrument.name not in seen_meta:
                seen_meta.add(instrument.name)
                help_text = self._help.get(instrument.name, "")
                if help_text:
                    lines.append(f"# HELP {instrument.name} "
                                 f"{_escape_help(help_text)}")
                lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            labels = instrument.labels
            if isinstance(instrument, Histogram):
                for upper, count in instrument.buckets():
                    le = "+Inf" if upper == float("inf") else f"{upper:g}"
                    lines.append(
                        f"{instrument.name}_bucket"
                        f"{_render_labels(labels, (('le', le),))} {count}")
                lines.append(f"{instrument.name}_sum"
                             f"{_render_labels(labels)} "
                             f"{instrument.sum:g}")
                lines.append(f"{instrument.name}_count"
                             f"{_render_labels(labels)} {instrument.count}")
                for q in (0.5, 0.95, 0.99):
                    lines.append(
                        f"{instrument.name}"
                        f"{_render_labels(labels, (('quantile', f'{q:g}'),))}"
                        f" {instrument.quantile(q):g}")
            else:
                lines.append(f"{instrument.name}{_render_labels(labels)} "
                             f"{instrument.value():g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> str:
        """JSON export: one entry per series."""
        series = []
        for instrument in self:
            entry: dict[str, Any] = {
                "name": instrument.name,
                "kind": instrument.kind,
                "labels": dict(instrument.labels),
            }
            if isinstance(instrument, Histogram):
                entry.update(count=instrument.count, sum=instrument.sum,
                             p50=instrument.p50, p95=instrument.p95,
                             p99=instrument.p99)
            else:
                entry["value"] = instrument.value()
            series.append(entry)
        return json.dumps({"metrics": series}, indent=2, sort_keys=True)
