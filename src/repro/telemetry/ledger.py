"""Run ledgers: one self-describing artifact per run (``repro-run/1``).

Every experiment, serve, scale or observe run can emit a *ledger* — a
JSON document carrying everything a later reader needs to compare the
run against another one without rerunning it:

* **provenance** — git sha, python, platform, UTC timestamp, seed, and
  a :func:`config_digest` of the :class:`~repro.config.CostModel` so
  two ledgers are only compared like-with-like;
* **volume** — events processed and (optionally) host wall time;
* **the critical-path stage table** — total simulated nanoseconds per
  canonical Figure-7 stage (:mod:`repro.telemetry.critical_path`),
  which is what :func:`repro.telemetry.diff.diff_runs` attributes
  regressions to;
* **exact percentiles** — nearest-rank p50/p99/p99.9 of every
  populated histogram in the metrics registry;
* **the metrics snapshot** — the registry's full series list.

:class:`~repro.telemetry.session.TelemetrySession.to_ledger` builds
one from a live session; :func:`make_ledger` builds one from raw parts
(the ``repro evaluate``/``repro scale`` paths, which aggregate stage
tables without a session).  :func:`load_run` reads either a ledger
*or* a ``BENCH_*.json`` perf artifact and normalizes both into the
same :class:`RunView`, so the BENCH trajectory files are just a
special case of ledgers as far as the differ is concerned.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["SCHEMA", "RunView", "config_digest", "load_run",
           "make_ledger", "write_ledger"]

SCHEMA = "repro-run/1"
BENCH_SCHEMA = "repro-bench/1"


# ------------------------------------------------------------ provenance
def config_digest(cfg) -> str:
    """Stable short digest of every CostModel field.

    Two runs with the same digest executed the same simulated machine;
    a differ should flag digest mismatches because stage deltas across
    *deliberately different* cost models are expected, not regressions.
    """
    import dataclasses
    items = sorted((f.name, getattr(cfg, f.name))
                   for f in dataclasses.fields(cfg))
    blob = json.dumps(items, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def git_sha() -> str:
    """The checked-out commit, or ``"unknown"`` outside a git repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10)
    except OSError:
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def run_meta(seed: Optional[int]) -> dict[str, Any]:
    return {
        "git_sha": git_sha(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "timestamp_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "seed": seed,
    }


# -------------------------------------------------------------- assembly
def make_ledger(kind: str, *, seed: Optional[int] = None, cfg=None,
                events: Optional[int] = None, wall_s: Optional[float] = None,
                stages: Optional[dict[str, int]] = None,
                percentiles: Optional[dict[str, dict[str, float]]] = None,
                metrics: Optional[list[dict[str, Any]]] = None,
                extra: Optional[dict[str, Any]] = None) -> dict[str, Any]:
    """Assemble one ``repro-run/1`` document.

    ``stages`` maps canonical stage name -> total simulated ns;
    ``percentiles`` maps a histogram key -> ``{"p50": .., "p99": ..,
    "p999": ..}`` (exact nearest-rank, in the histogram's own unit);
    ``metrics`` is the registry series list
    (:meth:`MetricsRegistry.to_json` shape).
    """
    stages = stages or {}
    return {
        "schema": SCHEMA,
        "kind": kind,
        "meta": run_meta(seed),
        "config_digest": config_digest(cfg) if cfg is not None else None,
        "events_processed": events,
        "wall_s": wall_s,
        "stages": [[stage, int(ns)] for stage, ns in
                   sorted(stages.items(), key=lambda kv: (-kv[1], kv[0]))],
        "percentiles": percentiles or {},
        "metrics": metrics or [],
        "extra": extra or {},
    }


def write_ledger(path, doc: dict[str, Any]) -> str:
    """Write a ledger, creating parent directories; returns the path."""
    path = os.fspath(path)
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# ------------------------------------------------------------- run views
@dataclass
class RunView:
    """A normalized run: what the differ compares.

    ``stages`` is canonical stage -> total simulated ns; ``metrics``
    is a flat scalar map (histogram percentiles flattened to
    ``name.p99``-style keys; BENCH results flattened to
    ``result/field`` keys).
    """

    path: str
    schema: str
    kind: str
    meta: dict = field(default_factory=dict)
    config_digest: Optional[str] = None
    events: Optional[int] = None
    stages: dict[str, int] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return os.path.basename(self.path) if self.path else self.kind

    @property
    def total_stage_ns(self) -> int:
        return sum(self.stages.values())


def _series_key(entry: dict) -> str:
    labels = entry.get("labels") or {}
    if not labels:
        return entry["name"]
    body = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{entry['name']}{{{body}}}"


def _view_from_ledger(doc: dict, path: str) -> RunView:
    view = RunView(path=path, schema=doc["schema"],
                   kind=doc.get("kind", "run"),
                   meta=doc.get("meta", {}),
                   config_digest=doc.get("config_digest"),
                   events=doc.get("events_processed"),
                   stages={stage: int(ns)
                           for stage, ns in doc.get("stages", [])})
    if view.events is not None:
        view.metrics["events_processed"] = float(view.events)
    if doc.get("wall_s") is not None:
        view.metrics["wall_s"] = float(doc["wall_s"])
    for key, quantiles in (doc.get("percentiles") or {}).items():
        for q, value in quantiles.items():
            view.metrics[f"{key}.{q}"] = float(value)
    for entry in doc.get("metrics", []):
        key = _series_key(entry)
        if "value" in entry:
            view.metrics[key] = float(entry["value"])
        elif "count" in entry:        # histogram series
            view.metrics[f"{key}.count"] = float(entry["count"])
    return view


def _view_from_bench(doc: dict, path: str) -> RunView:
    """Normalize a ``BENCH_*.json`` perf artifact into a RunView.

    Per-result numeric fields become ``result-name/field`` metrics;
    per-result ``stage_table`` entries (microseconds) are merged into
    one nanosecond stage map; ``calendar_vs_heap`` ratios (engine
    suite) become ``calendar_vs_heap/<scenario>`` metrics.
    """
    view = RunView(path=path, schema=doc["schema"],
                   kind=f"bench-{doc.get('suite', 'unknown')}",
                   meta=doc.get("meta", {}),
                   config_digest=doc.get("meta", {}).get("config_digest"))
    events = 0
    saw_events = False
    for result in doc.get("results", []):
        name = result.get("name", "?")
        for key, value in result.items():
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                continue
            view.metrics[f"{name}/{key}"] = float(value)
        for stage, us in result.get("stage_table") or []:
            view.stages[stage] = (view.stages.get(stage, 0)
                                  + int(round(us * 1000)))
        if isinstance(result.get("events"), (int, float)):
            events += int(result["events"])
            saw_events = True
    for scenario, ratio in (doc.get("calendar_vs_heap") or {}).items():
        view.metrics[f"calendar_vs_heap/{scenario}"] = float(ratio)
    if saw_events:
        view.events = events
        view.metrics["events_processed"] = float(events)
    return view


def load_run(source) -> RunView:
    """Load a ledger or BENCH artifact into a :class:`RunView`.

    ``source`` may be a path, an already-parsed document dict, or a
    :class:`RunView` (returned unchanged).
    """
    if isinstance(source, RunView):
        return source
    if isinstance(source, dict):
        doc, path = source, ""
    else:
        path = os.fspath(source)
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    schema = doc.get("schema")
    if schema == SCHEMA:
        return _view_from_ledger(doc, path)
    if schema == BENCH_SCHEMA:
        return _view_from_bench(doc, path)
    raise ValueError(
        f"{path or 'document'}: unknown schema {schema!r} "
        f"(expected {SCHEMA!r} or {BENCH_SCHEMA!r})")
