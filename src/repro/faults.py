"""Deterministic fault-injection campaigns.

The paper's reliability claim — BCL "performs data checking and
guarantees reliable transmission in the on-card control program" — is
reproduced by the go-back-N state machines in
:mod:`repro.firmware.reliability`.  This module provides the adversary:
a seeded, fully deterministic fault model that can be attached to any
:class:`~repro.hw.link.Link`, to a NIC's receive path, or to the MCP's
egress path, and exercises every recovery branch of the protocol.

Two objects make up a campaign:

* :class:`FaultPlan` — a frozen, declarative description of the faults
  to inject: i.i.d. drop/corrupt/duplicate/reorder rates, a
  Gilbert–Elliott two-state burst-loss model, timed link *brownouts*
  (windows in which the link drops at an elevated rate), and a
  scripted ``drop_seqs`` list for hand-computable single-loss
  scenarios.  Plans are plain data: picklable, hashable, comparable —
  the same plan and seed always produce the same packet-level fate
  sequence, serial or under ``--jobs N``.
* :class:`FaultInjector` — the per-attachment-point runtime.  Each
  injector derives its PRNG stream from ``(plan.seed, scope name)``,
  so a cluster-wide installation is deterministic regardless of how
  many links exist or in which order packets interleave across links.

Injectors speak the *adjudication protocol*: ``adjudicate(packet)``
returns a list of ``(extra_delay_ns, packet)`` deliveries — ``[]``
drops the packet, one zero-delay entry passes it through, a corrupted
copy models wire bit errors (caught by the packet CRC), two entries
duplicate, and a delayed single entry reorders the packet past its
successors.  The legacy single-callback hook (``packet -> packet |
None``) is still accepted everywhere an injector is and is wrapped in
:class:`CallbackInjector`.

Every fault is recorded as a :class:`FaultEvent` (and, when a tracer
is attached, as a zero-duration ``fault`` trace record that the Chrome
trace export renders as an instant marker, so a Perfetto timeline
shows the fault alongside the go-back-N recovery).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from random import Random
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.firmware.packet import SEQUENCED_TYPES, Packet, PacketType
from repro.sim import Environment, Tracer, us

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster import Cluster

__all__ = [
    "Brownout",
    "CallbackInjector",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "GilbertElliott",
    "as_injector",
    "derive_seed",
    "install_plan",
]

#: fault kinds that remove a DATA packet from the wire (open a loss
#: episode for time-to-recover accounting)
LOSS_KINDS = frozenset({"drop", "burst_drop", "brownout_drop", "corrupt",
                        "scripted_drop"})

#: Adjudication result: each entry is (extra_delay_ns, packet).
Outcome = List[Tuple[int, Packet]]


def derive_seed(base_seed: int, scope: str) -> int:
    """Stable per-scope PRNG seed: ``base_seed`` mixed with the scope name.

    Uses CRC-32 of the scope string (not :func:`hash`, which is
    randomised per process) so worker processes in a ``--jobs N`` run
    derive identical streams.
    """
    return (base_seed * 0x9E3779B1 + zlib.crc32(scope.encode())) & 0xFFFF_FFFF


@dataclass(frozen=True)
class GilbertElliott:
    """Two-state burst-loss model (Gilbert–Elliott).

    The channel is in a *good* or *bad* state; each adjudicated packet
    first transitions the state (``p_good_bad`` / ``p_bad_good``), then
    is lost with the state's loss rate.  The classic parametrisation
    for bursty links: low ``loss_good``, high ``loss_bad``, and mean
    burst length ``1 / p_bad_good`` packets.
    """

    p_good_bad: float = 0.01
    p_bad_good: float = 0.25
    loss_good: float = 0.0
    loss_bad: float = 1.0

    def validate(self) -> None:
        for name in ("p_good_bad", "p_bad_good", "loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"GilbertElliott.{name} must be a "
                                 f"probability, got {value}")


@dataclass(frozen=True)
class Brownout:
    """A timed degradation window: between ``start_us`` and ``end_us``
    (simulation time) the attachment point drops packets at
    ``drop_rate`` (default: everything — a full link outage)."""

    start_us: float
    end_us: float
    drop_rate: float = 1.0

    def validate(self) -> None:
        if self.end_us < self.start_us:
            raise ValueError(
                f"brownout ends ({self.end_us}) before it starts "
                f"({self.start_us})")
        if not 0.0 <= self.drop_rate <= 1.0:
            raise ValueError(
                f"brownout drop_rate must be a probability, "
                f"got {self.drop_rate}")

    def covers(self, now_ns: int) -> bool:
        return us(self.start_us) <= now_ns < us(self.end_us)


@dataclass(frozen=True)
class FaultPlan:
    """Declarative, seeded description of a fault campaign.

    All ``*_rate`` fields are independent per-packet probabilities,
    applied in order: brownout, burst model, drop, corrupt, duplicate,
    reorder.  ``drop_seqs`` deterministically drops the *first* wire
    copy of the listed go-back-N sequence numbers (per flow), for
    hand-computable recovery scenarios.  A plan with no faults
    configured (:meth:`is_null`) is behaviourally byte-identical to
    running with no injector installed at all.
    """

    seed: int = 1
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    #: extra in-flight delay applied to a reordered packet; it arrives
    #: after packets injected behind it, exercising the receiver's
    #: out-of-order handling
    reorder_delay_us: float = 40.0
    #: lag of the second copy of a duplicated packet
    duplicate_delay_us: float = 5.0
    burst: Optional[GilbertElliott] = None
    brownouts: Tuple[Brownout, ...] = ()
    #: deterministically drop the first copy of these DATA sequence
    #: numbers (per flow) — the scripted single-loss scenario
    drop_seqs: Tuple[int, ...] = ()
    #: leave ACK/NACK traffic untouched (the usual setting: the paper's
    #: reliability layer protects the data path; ack loss is exercised
    #: by dedicated tests)
    spare_acks: bool = True
    #: adjudicate a packet only while its source route is non-empty —
    #: on a single-switch fabric that judges each traversal exactly
    #: once, at the first hop.  With ``False`` every link on the path
    #: judges independently (per-hop loss).
    first_hop_only: bool = True

    def validate(self) -> None:
        for name in ("drop_rate", "corrupt_rate", "duplicate_rate",
                     "reorder_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"FaultPlan.{name} must be a probability, got {value}")
        for name in ("reorder_delay_us", "duplicate_delay_us"):
            if getattr(self, name) < 0:
                raise ValueError(f"FaultPlan.{name} must be non-negative")
        if self.burst is not None:
            self.burst.validate()
        for brownout in self.brownouts:
            brownout.validate()
        for seq in self.drop_seqs:
            if seq < 0:
                raise ValueError(f"drop_seqs entries must be >= 0, got {seq}")

    def is_null(self) -> bool:
        """True when the plan injects nothing (pass-through)."""
        return (self.drop_rate == 0.0 and self.corrupt_rate == 0.0
                and self.duplicate_rate == 0.0 and self.reorder_rate == 0.0
                and self.burst is None and not self.brownouts
                and not self.drop_seqs)

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for name in ("drop_rate", "corrupt_rate", "duplicate_rate",
                     "reorder_rate"):
            value = getattr(self, name)
            if value:
                parts.append(f"{name}={value:g}")
        if self.burst is not None:
            parts.append(f"burst(p_gb={self.burst.p_good_bad:g}, "
                         f"p_bg={self.burst.p_bad_good:g})")
        if self.brownouts:
            parts.append(f"{len(self.brownouts)} brownout(s)")
        if self.drop_seqs:
            parts.append(f"drop_seqs={list(self.drop_seqs)}")
        return "FaultPlan(" + ", ".join(parts) + ")"


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for metrics and trace annotation."""

    t_ns: int
    kind: str          # drop | burst_drop | brownout_drop | scripted_drop
                       # | corrupt | duplicate | reorder
    scope: str         # attachment point (link/NIC/MCP name)
    ptype: str         # packet type value ("data", "ack", ...)
    seq: int
    message_id: int
    src_nic: int
    dst_nic: int
    packet_id: int


class FaultInjector:
    """Runtime fault adjudicator for one attachment point.

    Deterministic: the PRNG stream depends only on ``(plan.seed,
    scope)`` and the order of adjudicated packets, which the simulator
    fixes.  A null plan consumes no randomness and passes every packet
    through unchanged, making the installed-but-idle case byte-identical
    to no injector at all.
    """

    def __init__(self, env: Environment, plan: FaultPlan, scope: str,
                 tracer: Optional[Tracer] = None):
        plan.validate()
        self.env = env
        self.plan = plan
        self.scope = scope
        self.tracer = tracer
        self.rng = Random(derive_seed(plan.seed, scope))
        self._ge_bad = False
        #: flows for which a scripted drop_seqs entry already fired:
        #: {(src, dst, seq)} — only the first wire copy is dropped
        self._scripted_done: set = set()
        self.inspected = 0
        self.drops = 0
        self.burst_drops = 0
        self.brownout_drops = 0
        self.scripted_drops = 0
        self.corruptions = 0
        self.duplicates = 0
        self.reorders = 0
        self.events: list[FaultEvent] = []
        self.listeners: list[Callable[[FaultEvent], None]] = []
        # Per-flow ledger of removed/added wire copies of *sequenced*
        # packets, keyed (src_nic, dst_nic).  The audit layer balances
        # these against the go-back-N sender/receiver byte counters.
        self.flow_drop_packets: dict[tuple[int, int], int] = {}
        self.flow_drop_bytes: dict[tuple[int, int], int] = {}
        self.flow_dup_packets: dict[tuple[int, int], int] = {}
        self.flow_dup_bytes: dict[tuple[int, int], int] = {}

    def _account_drop(self, packet: Packet) -> None:
        if packet.ptype in SEQUENCED_TYPES:
            flow = (packet.src_nic, packet.dst_nic)
            self.flow_drop_packets[flow] = \
                self.flow_drop_packets.get(flow, 0) + 1
            self.flow_drop_bytes[flow] = \
                self.flow_drop_bytes.get(flow, 0) + len(packet.payload)

    def _account_dup(self, packet: Packet) -> None:
        if packet.ptype in SEQUENCED_TYPES:
            flow = (packet.src_nic, packet.dst_nic)
            self.flow_dup_packets[flow] = \
                self.flow_dup_packets.get(flow, 0) + 1
            self.flow_dup_bytes[flow] = \
                self.flow_dup_bytes.get(flow, 0) + len(packet.payload)

    # ------------------------------------------------------------- events
    def _record(self, kind: str, packet: Packet) -> None:
        event = FaultEvent(self.env.now, kind, self.scope,
                           packet.ptype.value, packet.seq, packet.message_id,
                           packet.src_nic, packet.dst_nic, packet.packet_id)
        self.events.append(event)
        for listener in self.listeners:
            listener(event)
        if self.tracer is not None:
            # Zero-duration span: the Chrome export renders category
            # "fault" records as instant markers on the scope's row.
            self.tracer.record(self.env.now, self.env.now, "fault", kind,
                               self.scope, packet.message_id or None,
                               seq=packet.seq, ptype=packet.ptype.value)

    # -------------------------------------------------------- adjudication
    def eligible(self, packet: Packet) -> bool:
        if self.plan.spare_acks and packet.ptype in (PacketType.ACK,
                                                     PacketType.NACK):
            return False
        if self.plan.first_hop_only and not packet.route:
            return False
        return True

    def adjudicate(self, packet: Packet) -> Outcome:
        """Decide the fate of ``packet``: a list of deliveries.

        ``[]`` means dropped; otherwise each ``(extra_delay_ns, pkt)``
        entry is delivered after the attachment point's normal latency
        plus the extra delay.
        """
        plan = self.plan
        if not self.eligible(packet):
            return [(0, packet)]
        self.inspected += 1

        # 1. Timed brownouts (deterministic windows, seeded rate inside).
        for brownout in plan.brownouts:
            if brownout.covers(self.env.now):
                if brownout.drop_rate >= 1.0 or \
                        self.rng.random() < brownout.drop_rate:
                    self.brownout_drops += 1
                    self._account_drop(packet)
                    self._record("brownout_drop", packet)
                    return []

        # 2. Scripted single drops (first wire copy of the listed seqs).
        if plan.drop_seqs and packet.ptype is PacketType.DATA:
            key = (packet.src_nic, packet.dst_nic, packet.seq)
            if packet.seq in plan.drop_seqs and \
                    key not in self._scripted_done:
                self._scripted_done.add(key)
                self.scripted_drops += 1
                self._account_drop(packet)
                self._record("scripted_drop", packet)
                return []

        # 3. Gilbert–Elliott burst state machine.
        if plan.burst is not None:
            ge = plan.burst
            if self._ge_bad:
                if self.rng.random() < ge.p_bad_good:
                    self._ge_bad = False
            else:
                if self.rng.random() < ge.p_good_bad:
                    self._ge_bad = True
            loss = ge.loss_bad if self._ge_bad else ge.loss_good
            if loss and self.rng.random() < loss:
                self.burst_drops += 1
                self._account_drop(packet)
                self._record("burst_drop", packet)
                return []

        # 4. Independent per-packet faults, in fixed order.
        if plan.drop_rate and self.rng.random() < plan.drop_rate:
            self.drops += 1
            self._account_drop(packet)
            self._record("drop", packet)
            return []
        if plan.corrupt_rate and self.rng.random() < plan.corrupt_rate:
            self.corruptions += 1
            self._record("corrupt", packet)
            return [(0, replace(packet, corrupted=True))]
        if plan.duplicate_rate and self.rng.random() < plan.duplicate_rate:
            self.duplicates += 1
            self._account_dup(packet)
            self._record("duplicate", packet)
            return [(0, packet), (us(plan.duplicate_delay_us),
                                  replace(packet))]
        if plan.reorder_rate and self.rng.random() < plan.reorder_rate:
            self.reorders += 1
            self._record("reorder", packet)
            return [(us(plan.reorder_delay_us), packet)]
        return [(0, packet)]

    @property
    def total_losses(self) -> int:
        return (self.drops + self.burst_drops + self.brownout_drops
                + self.scripted_drops)

    def counts(self) -> dict[str, int]:
        return {"inspected": self.inspected, "drops": self.drops,
                "burst_drops": self.burst_drops,
                "brownout_drops": self.brownout_drops,
                "scripted_drops": self.scripted_drops,
                "corruptions": self.corruptions,
                "duplicates": self.duplicates, "reorders": self.reorders}


class CallbackInjector:
    """Adapter: the legacy single-callback hook as an injector.

    Wraps ``packet -> packet | None`` (None drops) so existing test
    injectors and the ``Cluster(fault_injector=...)`` argument keep
    working against the adjudication protocol.  Cannot duplicate or
    reorder — that is exactly the limitation :class:`FaultPlan`
    removes.
    """

    def __init__(self, fn: Callable[[Packet], Optional[Packet]]):
        self.fn = fn
        # Same per-flow drop ledger as FaultInjector, so callback drops
        # of sequenced packets stay visible to the audit layer.
        self.flow_drop_packets: dict[tuple[int, int], int] = {}
        self.flow_drop_bytes: dict[tuple[int, int], int] = {}

    def adjudicate(self, packet: Packet) -> Outcome:
        result = self.fn(packet)
        if result is None:
            if packet.ptype in SEQUENCED_TYPES:
                flow = (packet.src_nic, packet.dst_nic)
                self.flow_drop_packets[flow] = \
                    self.flow_drop_packets.get(flow, 0) + 1
                self.flow_drop_bytes[flow] = \
                    self.flow_drop_bytes.get(flow, 0) + len(packet.payload)
            return []
        return [(0, result)]


def as_injector(hook) -> Optional[object]:
    """Normalise a fault hook: injector objects pass through, bare
    callables are wrapped, None stays None."""
    if hook is None or hasattr(hook, "adjudicate"):
        return hook
    if callable(hook):
        return CallbackInjector(hook)
    raise TypeError(f"not a fault injector or callback: {hook!r}")


def install_plan(cluster: "Cluster", plan: FaultPlan) -> list[FaultInjector]:
    """Attach one seeded injector per fabric link.

    Each link's injector derives its PRNG stream from the link name, so
    the installation is independent of link construction order and
    identical across worker processes.  Returns the injectors (also
    recorded on ``cluster.fault_injectors``).
    """
    plan.validate()
    injectors = []
    for link in cluster.network.links:
        injector = FaultInjector(cluster.env, plan, link.name,
                                 cluster.tracer)
        link.injector = injector
        injectors.append(injector)
    return injectors
