"""Composition root: build a complete simulated cluster.

:class:`Cluster` assembles nodes (CPUs, memory, PCI, NIC), the network
fabric, per-node kernels with the BCL kernel module, and the MCP
firmware on every NIC — i.e. a ready-to-use DAWNING-3000-style machine.

The ``architecture`` argument selects which protocol stack the NICs and
kernels are configured for:

* ``"semi_user"`` — the paper's BCL (default): physical-address
  descriptors filled by the kernel, trap-free receive.
* ``"user_level"`` — GM/VIA-style baseline: the NIC translates through
  its TLB; the user library writes descriptors and doorbells directly
  (see :mod:`repro.baselines.user_level`).
* ``"kernel_level"`` — TCP-style baseline: traps on both sides plus
  per-arrival interrupts (see :mod:`repro.baselines.kernel_level`).

All three run on identical simulated hardware, like the paper's
single-testbed comparison.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config import DAWNING_3000, CostModel
from repro.faults import FaultInjector, FaultPlan, install_plan
from repro.firmware.mcp import Mcp
from repro.firmware.packet import Packet
from repro.hw.network import Network, build_network
from repro.hw.node import Node, UserProcess
from repro.kernel.kernel import Kernel
from repro.kernel.module import BclKernelModule
from repro.sim import Environment, Tracer

__all__ = ["Cluster"]

ARCHITECTURES = ("semi_user", "user_level", "kernel_level")


class Cluster:
    """A simulated SMP cluster running one communication architecture."""

    def __init__(self, n_nodes: int = 2,
                 cfg: CostModel = DAWNING_3000,
                 architecture: str = "semi_user",
                 topology: str = "single_switch",
                 trace: bool = False,
                 reliable: bool = True,
                 fault_injector: Optional[Callable[[Packet],
                                                   Optional[Packet]]] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 env: Optional[Environment] = None,
                 audit: Optional[bool] = None,
                 telemetry: Optional[bool] = None,
                 recorder: Optional[bool] = None):
        if architecture not in ARCHITECTURES:
            raise ValueError(
                f"unknown architecture {architecture!r}; "
                f"choose one of {ARCHITECTURES}")
        cfg.validate()
        self.cfg = cfg
        self.architecture = architecture
        self.env = env if env is not None else Environment()
        # The invariant auditor must exist on the environment *before*
        # nodes, network and MCPs are built, so their Stores, Resources
        # and go-back-N flows self-register.  ``audit=None`` defers to
        # the global switch (repro.audit.enable() / REPRO_AUDIT=1).
        self.auditor = None
        if audit is None:
            from repro import audit as _audit_mod
            audit = _audit_mod.enabled()
        if audit:
            from repro.audit import Auditor
            self.auditor = getattr(self.env, "_audit", None) or \
                Auditor(self.env)
        self.tracer = Tracer(enabled=trace)
        translation = "virtual" if architecture == "user_level" else "physical"
        self.nodes: list[Node] = [
            Node(self.env, cfg, node_id, self.tracer,
                 nic_translation_mode=translation)
            for node_id in range(n_nodes)
        ]
        self.network: Network = build_network(
            self.env, cfg, n_nodes, topology, fault_injector)
        #: seeded per-link injectors, when a fault_plan is installed
        self.fault_plan = fault_plan
        self.fault_injectors: list[FaultInjector] = []
        if fault_plan is not None:
            if fault_injector is not None:
                raise ValueError(
                    "pass either fault_injector (legacy callback) or "
                    "fault_plan, not both")
            self.fault_injectors = install_plan(self, fault_plan)
        self.mcps: list[Mcp] = []
        for node in self.nodes:
            node.nic.attach_network(self.network)
            self.mcps.append(Mcp(self.env, cfg, node.nic, self.tracer,
                                 reliable=reliable))
            kernel = Kernel(self.env, cfg, node, n_nodes, self.tracer)
            kernel.bcl_module = BclKernelModule(kernel, self.tracer)
            node.kernel = kernel
        if self.auditor is not None:
            self.auditor.bind_cluster(self)
        # Message-lifecycle telemetry (repro.telemetry): spans, metrics
        # and critical-path attribution.  A pure observer like the
        # auditor — ``telemetry=None`` defers to the global switch
        # (repro.telemetry.enable() / REPRO_TELEMETRY=1).  Attached
        # last so every layer's counters already exist to register.
        self.telemetry = None
        if telemetry is None:
            from repro import telemetry as _telemetry_mod
            telemetry = _telemetry_mod.enabled()
        if telemetry:
            from repro.telemetry import TelemetrySession
            self.telemetry = TelemetrySession(self)
        # Crash flight recorder: a bounded ring of recent heartbeats
        # and span openings, dumped to postmortem-*.json on failure.
        # Another pure observer; ``recorder=None`` defers to the global
        # switch (repro.telemetry.recorder.enable() / REPRO_RECORDER=1).
        self.recorder = None
        if recorder is None:
            from repro.telemetry import recorder as _recorder_mod
            recorder = _recorder_mod.enabled()
        if recorder:
            from repro.telemetry.recorder import FlightRecorder
            self.recorder = FlightRecorder(self)

    # ------------------------------------------------------------- access
    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def spawn(self, node_id: int, pid: Optional[int] = None,
              cpu_index: Optional[int] = None) -> UserProcess:
        """Spawn a user process on a node."""
        return self.nodes[node_id].spawn_process(pid, cpu_index)

    def run(self, until=None):
        return self.env.run(until)

    # ----------------------------------------------------------- telemetry
    @property
    def total_traps(self) -> int:
        return sum(n.kernel.counters.traps for n in self.nodes)

    @property
    def total_interrupts(self) -> int:
        return sum(n.kernel.counters.interrupts for n in self.nodes)

    @property
    def total_retransmissions(self) -> int:
        return sum(s.retransmissions
                   for mcp in self.mcps
                   for s in mcp._senders.values())

    @property
    def total_fast_retransmits(self) -> int:
        return sum(s.fast_retransmits
                   for mcp in self.mcps
                   for s in mcp._senders.values())

    @property
    def total_retransmit_timeouts(self) -> int:
        return sum(s.timeouts
                   for mcp in self.mcps
                   for s in mcp._senders.values())

    @property
    def total_injected_faults(self) -> int:
        return sum(inj.total_losses + inj.corruptions + inj.duplicates
                   + inj.reorders for inj in self.fault_injectors)
