"""repro.serve — an RPC serving tier over the BCL/EADI user-level path.

Million-user request/response traffic on the paper's kernel-bypass
architecture: connection multiplexing (many simulated clients per rank
over one EADI endpoint), credit-based admission control and
backpressure, per-node worker pools with bounded queues, and a
load-balancing front switch.  See :func:`repro.serve.tier.run_serve`.
"""

from repro.serve.admission import AdmissionWindow
from repro.serve.config import ARRIVALS, POLICIES, SERVICE_DISTS, ServeConfig
from repro.serve.pool import STOP, RequestQueue, WorkerPool
from repro.serve.rpc import (HEADER_BYTES, K_REQUEST, K_STOP, R_OK, R_SHED,
                             RequestHeader, pack_header, unpack_header)
from repro.serve.switch import FrontSwitch
from repro.serve.tier import ServeReport, percentile_nearest_rank, run_serve

__all__ = [
    "ARRIVALS", "POLICIES", "SERVICE_DISTS",
    "AdmissionWindow", "FrontSwitch", "RequestQueue", "STOP", "WorkerPool",
    "ServeConfig", "ServeReport", "run_serve", "percentile_nearest_rank",
    "HEADER_BYTES", "K_REQUEST", "K_STOP", "R_OK", "R_SHED",
    "RequestHeader", "pack_header", "unpack_header",
]
