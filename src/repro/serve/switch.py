"""The load-balancing front switch.

A logically centralized dispatch function mapping each request to a
server rank.  Three policies:

* ``round_robin`` — per-client-rank rotation, offset by the rank slot
  so concurrent generators do not gang up on server 0;
* ``least_loaded`` — the server with the smallest instantaneous load
  (queued + in service), ties to the lowest rank: models a front switch
  with live backend feedback;
* ``consistent_hash`` — CRC-32 hash ring with ``hash_replicas`` virtual
  nodes per server, keyed by the simulated client id: models session
  affinity, and keeps most keys stable when the server set changes.

All three are deterministic functions of (request identity, observable
server state), never of wall clock or Python hash randomization.
"""

from __future__ import annotations

import bisect
from zlib import crc32
from typing import Callable, Sequence

__all__ = ["FrontSwitch"]


class FrontSwitch:
    def __init__(self, policy: str, server_ranks: Sequence[int],
                 load_of: Callable[[int], int], *,
                 hash_replicas: int = 32, seed: int = 1):
        self.policy = policy
        self.server_ranks = tuple(server_ranks)
        self.load_of = load_of
        self._rr_next: dict[int, int] = {}
        self._ring: list[tuple[int, int]] = []
        if policy == "consistent_hash":
            points = []
            for rank in self.server_ranks:
                for replica in range(hash_replicas):
                    points.append(
                        (crc32(f"{rank}:{replica}:{seed}".encode()), rank))
            points.sort()
            self._ring = points
            self._ring_keys = [point for point, _ in points]

    def pick(self, client_id: int, rank_slot: int) -> int:
        """Server rank for one request from ``client_id`` arriving via
        client-rank slot ``rank_slot``."""
        servers = self.server_ranks
        if self.policy == "round_robin":
            index = self._rr_next.get(rank_slot, rank_slot % len(servers))
            self._rr_next[rank_slot] = (index + 1) % len(servers)
            return servers[index]
        if self.policy == "least_loaded":
            return min(servers, key=lambda rank: (self.load_of(rank), rank))
        point = crc32(str(client_id).encode())
        index = bisect.bisect_right(self._ring_keys, point)
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]
