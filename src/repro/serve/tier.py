"""The serving tier: RPC over EADI endpoints, end to end.

``run_serve`` builds (or borrows) a cluster, places ``n_servers``
server ranks and ``n_client_ranks`` load-generator ranks on their own
nodes, and runs one offered-load point to completion:

* **client ranks** replay a pre-generated open-loop schedule
  (:mod:`repro.workloads.serve`), multiplexing all of their simulated
  clients over one EADI endpoint.  Each arrival passes the client-side
  :class:`~repro.serve.admission.AdmissionWindow` (bounded in-flight +
  bounded park queue, open-loop shed beyond that), asks the
  :class:`~repro.serve.switch.FrontSwitch` for a backend, and runs as
  its own request process: send, await reply, record
  arrival-to-reply latency — *including* any time parked, which is
  what an open-loop tail measurement must charge.
* **server ranks** run a single intake loop (sole owner of protocol
  matching) plus a :class:`~repro.serve.pool.WorkerPool`.  Intake
  drains whatever has arrived, sorts the batch by the client-stamped
  ``(arrival_ns, src, tag)`` key, charges the front-switch dispatch
  cost and admits into the bounded queue — or replies SHED on the
  spot.  Workers burn the request's pre-sampled service time and send
  the OK reply themselves (EADI's staging lock serializes the wire).

Termination: each client sends one STOP (tag 0) to every server after
its last reply lands; a server exits once every client rank has
stopped and its queue has drained.  Server memory is bounded by
construction: one recv slot, a depth-bounded queue of small request
records, and the EADI credit machinery bounding undrained arrivals.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.cluster import Cluster
from repro.config import DAWNING_3000, CostModel
from repro.serve.admission import AdmissionWindow
from repro.serve.config import ServeConfig
from repro.serve.pool import WorkerPool
from repro.serve.rpc import (HEADER_BYTES, K_REQUEST, K_STOP, R_OK, R_SHED,
                             pack_header, unpack_header)
from repro.serve.switch import FrontSwitch
from repro.sim.time import ns_to_us
from repro.upper.eadi import ANY_SOURCE, ANY_TAG
from repro.upper.job import run_spmd
from repro.workloads.serve import schedules

__all__ = ["ServeReport", "run_serve", "percentile_nearest_rank"]


def percentile_nearest_rank(sorted_values: list, p: float):
    """Exact nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return None
    rank = max(1, math.ceil(p / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass
class _ServerStats:
    rank: int
    admitted: int = 0
    served: int = 0
    shed: int = 0
    stops_seen: int = 0
    peak_queue: int = 0


@dataclass
class _Request:
    """What the server keeps while a request is queued (the payload
    buffer is released at recv time; only this record is held)."""

    src_rank: int
    tag: int
    client_id: int
    arrival_ns: int
    service_ns: int
    reply_bytes: int


@dataclass
class ServeReport:
    """One offered-load point, JSON-able via ``to_dict``."""

    rho: float
    offered_rps: float
    capacity_rps: float
    requests: int
    completed_ok: int
    shed_server: int
    shed_client: int
    goodput_rps: float
    p50_us: Optional[float]
    p99_us: Optional[float]
    p999_us: Optional[float]
    admission_parks: int
    peak_in_flight: int
    peak_parked: int
    peak_queue: int
    credit_stalls: int
    makespan_us: float
    events: int
    per_server: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "rho": self.rho, "offered_rps": round(self.offered_rps, 1),
            "capacity_rps": round(self.capacity_rps, 1),
            "requests": self.requests, "completed_ok": self.completed_ok,
            "shed_server": self.shed_server,
            "shed_client": self.shed_client,
            "goodput_rps": round(self.goodput_rps, 1),
            "p50_us": self.p50_us, "p99_us": self.p99_us,
            "p999_us": self.p999_us,
            "admission_parks": self.admission_parks,
            "peak_in_flight": self.peak_in_flight,
            "peak_parked": self.peak_parked,
            "peak_queue": self.peak_queue,
            "credit_stalls": self.credit_stalls,
            "makespan_us": self.makespan_us, "events": self.events,
            "per_server": self.per_server,
        }


def run_serve(scfg: ServeConfig, rho: float,
              cfg: CostModel = DAWNING_3000,
              cluster: Optional[Cluster] = None,
              topology: str = "single_switch") -> ServeReport:
    """Run one offered-load point ``rho`` (fraction of nominal service
    capacity) and return its :class:`ServeReport`."""
    scfg.validate()
    n_servers, n_clients = scfg.n_servers, scfg.n_client_ranks
    n_ranks = n_servers + n_clients
    if cluster is None:
        cluster = Cluster(n_nodes=n_ranks, cfg=cfg, topology=topology)
    elif len(cluster.nodes) < n_ranks:
        raise ValueError(f"cluster has {len(cluster.nodes)} nodes; "
                         f"the deployment needs {n_ranks}")
    env = cluster.env
    cost = cluster.cfg
    server_ranks = tuple(range(n_servers))
    plans = schedules(scfg, rho)

    pools: dict[int, WorkerPool] = {}
    stats = {rank: _ServerStats(rank) for rank in server_ranks}
    switch = FrontSwitch(
        scfg.policy, server_ranks,
        lambda rank: pools[rank].load if rank in pools else 0,
        hash_replicas=scfg.hash_replicas, seed=scfg.seed)

    latencies_ns: list[int] = []
    shed_server_n = {"n": 0}
    windows: list[AdmissionWindow] = []
    endpoints: list = []
    t_first = {"ns": None}
    t_last = {"ns": 0}

    # ------------------------------------------------------- telemetry
    session = getattr(env, "_telemetry", None)
    latency_hist = None
    if session is not None:
        reg = session.registry
        latency_hist = reg.histogram(
            "repro_serve_latency_ns",
            "arrival-to-reply latency of completed requests")
        reg.register_callback(
            "repro_serve_ok_total", lambda: len(latencies_ns),
            "requests completed with an OK reply", kind="counter")
        reg.register_callback(
            "repro_serve_shed_total", lambda: shed_server_n["n"],
            "requests shed by server admission control",
            kind="counter", where="server")
        reg.register_callback(
            "repro_serve_shed_total",
            lambda: sum(w.shed for w in windows),
            "arrivals shed by the client admission window",
            kind="counter", where="client")
        for rank in server_ranks:
            reg.register_callback(
                "repro_serve_queue_depth",
                lambda rank=rank: (pools[rank].load
                                   if rank in pools else 0),
                "queued + in-service requests", kind="gauge",
                server=rank)

    # ------------------------------------------------------ server side
    def server_main(ep) -> Generator:
        proc = ep.lib.proc
        my = stats[ep.rank]
        max_reply = max(scfg.reply_bytes, HEADER_BYTES)
        ok_vaddr = proc.alloc(max_reply)
        proc.write(ok_vaddr, bytes([R_OK]) + b"K" * (max_reply - 1))
        shed_vaddr = proc.alloc(HEADER_BYTES)
        proc.write(shed_vaddr, bytes([R_SHED]).ljust(HEADER_BYTES, b"S"))
        recv_slot = proc.alloc(scfg.req_bytes_cap + HEADER_BYTES)
        outstanding = {"n": 0}
        done_wake = {"ev": None}

        def service(item: _Request, _worker_index: int) -> Generator:
            if cost.serve_worker_overhead_us > 0:
                yield env.sleep(
                    max(1, round(cost.serve_worker_overhead_us * 1000)))
            yield env.sleep(item.service_ns)
            yield from ep.send(item.src_rank, ok_vaddr, item.reply_bytes,
                               tag=item.tag)
            my.served += 1
            outstanding["n"] -= 1
            wake = done_wake["ev"]
            if wake is not None and not wake.triggered:
                wake.succeed()

        pool = WorkerPool(env, scfg.workers, scfg.queue_depth, service,
                          name=f"serve{ep.rank}")
        pools[ep.rank] = pool

        while True:
            batch: list[_Request] = []
            while True:
                found = yield from ep.iprobe(ANY_SOURCE, ANY_TAG)
                if found is None:
                    break
                src, tag, _length = found
                yield from ep.recv(src, tag, recv_slot,
                                   scfg.req_bytes_cap + HEADER_BYTES)
                header = unpack_header(proc.read(recv_slot, HEADER_BYTES))
                if header.kind == K_STOP:
                    my.stops_seen += 1
                    continue
                batch.append(_Request(
                    src_rank=src, tag=tag, client_id=header.client_id,
                    arrival_ns=header.arrival_ns,
                    service_ns=header.service_ns,
                    reply_bytes=max(header.reply_bytes, 1)))
            # Priority order is the client-stamped identity, so the
            # admission sequence is invariant to same-instant delivery
            # permutations (fuzz tie-break shuffler).
            batch.sort(key=lambda r: (r.arrival_ns, r.src_rank, r.tag))
            for req in batch:
                if cost.serve_dispatch_us > 0:
                    yield from proc.cpu.execute(cost.serve_dispatch_us,
                                                category="serve",
                                                stage="serve_dispatch")
                if pool.queue.try_put(
                        (req.arrival_ns, req.src_rank, req.tag), req):
                    my.admitted += 1
                    outstanding["n"] += 1
                    my.peak_queue = max(my.peak_queue, pool.load)
                else:
                    my.shed += 1
                    shed_server_n["n"] += 1
                    yield from ep.send(req.src_rank, shed_vaddr,
                                       HEADER_BYTES, tag=req.tag)
            if my.stops_seen >= n_clients and outstanding["n"] == 0 \
                    and not len(pool.queue):
                break
            wake = done_wake["ev"] = ep.port.env.event()
            yield env.any_of([wake,
                              ep.port.recv_queue.wakeup_event(),
                              ep.port._shm_wakeup_event()])
            done_wake["ev"] = None
        pool.stop()
        yield pool.drained()
        return my

    # ------------------------------------------------------ client side
    def client_main(ep, slot: int) -> Generator:
        proc = ep.lib.proc
        plan = plans[slot]
        window = AdmissionWindow(env, scfg.window, scfg.client_queue)
        windows.append(window)
        max_reply = max(scfg.reply_bytes, HEADER_BYTES)
        free: deque = deque()
        for _ in range(scfg.window):
            free.append((proc.alloc(scfg.req_bytes_cap + HEADER_BYTES),
                         proc.alloc(max_reply)))
        t0 = env.now
        if plan and (t_first["ns"] is None
                     or t0 + plan[0].t_ns < t_first["ns"]):
            t_first["ns"] = t0 + plan[0].t_ns

        def request(arr, gate) -> Generator:
            if gate is not None:
                yield gate
            req_vaddr, rep_vaddr = free.popleft()
            server = switch.pick(arr.client_id, slot)
            proc.write(req_vaddr, pack_header(
                K_REQUEST, client_id=arr.client_id,
                arrival_ns=t0 + arr.t_ns, service_ns=arr.service_ns,
                reply_bytes=arr.reply_bytes))
            yield from ep.send(server, req_vaddr, arr.req_bytes,
                               tag=arr.req_index)
            yield from ep.recv(server, arr.req_index, rep_vaddr, max_reply)
            flag = proc.read(rep_vaddr, 1)[0]
            if flag == R_OK:
                latency = env.now - (t0 + arr.t_ns)
                latencies_ns.append(latency)
                if latency_hist is not None:
                    latency_hist.observe(latency)
            t_last["ns"] = max(t_last["ns"], env.now)
            free.append((req_vaddr, rep_vaddr))
            window.release()

        spawned = []
        for arr in plan:
            deadline = t0 + arr.t_ns
            if deadline > env.now:
                yield env.sleep(deadline - env.now)
            gate = window.admit()
            if gate is False:
                continue          # open-loop shed (window.shed counted)
            spawned.append(env.process(
                request(arr, gate), name=f"req{slot}.{arr.req_index}"))
        if spawned:
            yield env.all_of(spawned)
        stop_vaddr = proc.alloc(HEADER_BYTES)
        proc.write(stop_vaddr, pack_header(K_STOP))
        for rank in server_ranks:
            yield from ep.send(rank, stop_vaddr, HEADER_BYTES, tag=0)

    def rank_fn(ep) -> Generator:
        endpoints.append(ep)
        if ep.rank < n_servers:
            return (yield from server_main(ep))
        return (yield from client_main(ep, ep.rank - n_servers))

    try:
        run_spmd(cluster, n_ranks, rank_fn, layer="eadi",
                 placement=list(range(n_ranks)))
    except BaseException as exc:
        # A crashed load point is exactly what the flight recorder is
        # for: ship the last-K timeline before the exception propagates
        # (dump() is exception-safe; an AuditError already dumped).
        recorder = getattr(env, "_recorder", None)
        if recorder is not None and type(exc).__name__ != "AuditError":
            recorder.dump(f"serve: {type(exc).__name__} at rho={rho}",
                          note=str(exc))
        raise

    # -------------------------------------------------------- reporting
    latencies_ns.sort()
    lat_us = [round(ns_to_us(v), 3) for v in latencies_ns]
    ok = len(latencies_ns)
    shed_client = sum(w.shed for w in windows)
    span_ns = (t_last["ns"] - t_first["ns"]
               if ok and t_first["ns"] is not None else 0)
    return ServeReport(
        rho=rho,
        offered_rps=scfg.offered_rps(rho),
        capacity_rps=scfg.capacity_rps,
        requests=scfg.requests,
        completed_ok=ok,
        shed_server=shed_server_n["n"],
        shed_client=shed_client,
        goodput_rps=(ok / (span_ns / 1e9)) if span_ns else 0.0,
        p50_us=percentile_nearest_rank(lat_us, 50),
        p99_us=percentile_nearest_rank(lat_us, 99),
        p999_us=percentile_nearest_rank(lat_us, 99.9),
        admission_parks=sum(w.parks for w in windows),
        peak_in_flight=max((w.peak_in_flight for w in windows), default=0),
        peak_parked=max((w.peak_parked for w in windows), default=0),
        peak_queue=max((s.peak_queue for s in stats.values()), default=0),
        credit_stalls=sum(ep.credit_stalls for ep in endpoints),
        makespan_us=round(ns_to_us(span_ns), 3),
        events=env.events_processed,
        per_server=[{"server": s.rank, "admitted": s.admitted,
                     "served": s.served, "shed": s.shed,
                     "peak_queue": s.peak_queue}
                    for s in stats.values()])
