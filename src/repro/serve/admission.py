"""Client-side admission control: a counted in-flight window.

Generalizes the EADI eager-credit machinery one level up: each client
rank may have at most ``window`` RPCs in flight.  Arrivals beyond the
window park FIFO (up to ``max_parked`` of them — bounding memory under
overload); anything beyond that is shed immediately, keeping the load
generator open-loop.

The release discipline is the one the EADI credit fix pinned: a freed
slot is handed *directly* to the single oldest parked waiter — waiters
never re-contend, so there is no thundering herd and no lost-wakeup
re-park, and wakeups are strictly FIFO.
"""

from __future__ import annotations

from repro.sim import Environment, Event

__all__ = ["AdmissionWindow"]


class AdmissionWindow:
    def __init__(self, env: Environment, window: int, max_parked: int = 0):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if max_parked < 0:
            raise ValueError(f"max_parked must be >= 0, got {max_parked}")
        self.env = env
        self.window = window
        self.max_parked = max_parked
        self._free = window
        self._parked: list[Event] = []
        # ------------------------------------------------------ stats
        self.admitted = 0      #: granted a slot (immediately or parked)
        self.shed = 0          #: rejected outright (park queue full)
        self.parks = 0         #: admissions that had to park first
        self.peak_parked = 0
        self.peak_in_flight = 0

    @property
    def in_flight(self) -> int:
        return self.window - self._free

    @property
    def parked(self) -> int:
        return len(self._parked)

    def admit(self):
        """One arrival wants a slot.

        Returns ``None`` when a slot was granted immediately, an
        :class:`Event` to wait on when the arrival parked, or ``False``
        when it must be shed (window and park queue both full).
        """
        if self._free > 0:
            self._free -= 1
            self.admitted += 1
            self.peak_in_flight = max(self.peak_in_flight, self.in_flight)
            return None
        if len(self._parked) >= self.max_parked:
            self.shed += 1
            return False
        gate = Event(self.env)
        self._parked.append(gate)
        self.admitted += 1
        self.parks += 1
        self.peak_parked = max(self.peak_parked, len(self._parked))
        return gate

    def release(self, count: int = 1) -> None:
        """Return ``count`` slots; each wakes at most one parked waiter
        (oldest first), the remainder of the queue stays parked."""
        for _ in range(count):
            if self._parked:
                # Hand the slot straight over: the waiter stays
                # in-flight, nobody re-contends.
                self._parked.pop(0).succeed()
            else:
                if self._free >= self.window:
                    raise RuntimeError("admission window over-released")
                self._free += 1
