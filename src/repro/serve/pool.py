"""Per-server worker pool: a bounded priority queue + worker processes.

The queue is keyed by ``(arrival_ns, src_rank, tag)`` — the request's
*client-side* identity, embedded in its header — rather than enqueue
order.  Two requests delivered at the same simulated instant are
therefore serviced in the same order regardless of how the event
engine's tie-break permutes their delivery callbacks; worker-pool
ordering stays byte-identical under the fuzz tie-break shuffler.

``try_put`` is the admission decision: it drops (returns ``False``)
when the queue holds ``depth`` requests, so server memory is bounded no
matter the offered load.  Workers pop in priority order and run the
supplied service generator; ``stop()`` injects one sentinel per worker
*behind* all real work (sentinels sort last).
"""

from __future__ import annotations

import heapq
from typing import Callable, Generator, Optional

from repro.sim import Environment, Event

__all__ = ["RequestQueue", "WorkerPool", "STOP"]

#: sentinel: sorts after every real key, tells a worker to exit
STOP = object()
_STOP_KEY = (float("inf"), float("inf"), float("inf"))


class RequestQueue:
    """Bounded priority queue with blocking, FIFO-woken getters."""

    def __init__(self, env: Environment, depth: int):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.env = env
        self.depth = depth
        self._heap: list[tuple] = []
        self._live = 0           # non-sentinel entries (capacity check)
        self._getters: list[Event] = []
        self.peak_depth = 0
        self.dropped = 0

    def __len__(self) -> int:
        return self._live

    def try_put(self, key: tuple, item) -> bool:
        """Admit ``item`` under ``key``; False (drop) when full."""
        if self._live >= self.depth:
            self.dropped += 1
            return False
        heapq.heappush(self._heap, (key, item))
        self._live += 1
        self.peak_depth = max(self.peak_depth, self._live)
        self._wake_one()
        return True

    def put_sentinel(self) -> None:
        """Inject a STOP marker behind all queued work (bypasses the
        capacity bound: shutdown must not be shed)."""
        heapq.heappush(self._heap, (_STOP_KEY, STOP))
        self._wake_one()

    def _wake_one(self) -> None:
        if self._getters:
            self._getters.pop(0).succeed()

    def get(self) -> Generator:
        """Pop the smallest-keyed item (generator: parks when empty)."""
        while not self._heap:
            gate = Event(self.env)
            self._getters.append(gate)
            yield gate
        key, item = heapq.heappop(self._heap)
        if item is not STOP:
            self._live -= 1
        if self._heap:
            # More work than wakeups can happen (puts while no getter
            # was parked); pass the signal along so sibling workers
            # parked right now also get up.
            self._wake_one()
        return item


class WorkerPool:
    """``n_workers`` identical service loops over one RequestQueue."""

    def __init__(self, env: Environment, n_workers: int, depth: int,
                 service_fn: Callable[..., Generator],
                 name: str = "serve"):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.env = env
        self.n_workers = n_workers
        self.queue = RequestQueue(env, depth)
        self.service_fn = service_fn
        self.in_service = 0
        self.serviced = 0
        self._procs = [env.process(self._worker(i), name=f"{name}.w{i}")
                       for i in range(n_workers)]

    @property
    def load(self) -> int:
        """Queued + in-service requests (the least-loaded signal)."""
        return len(self.queue) + self.in_service

    def _worker(self, index: int) -> Generator:
        while True:
            item = yield from self.queue.get()
            if item is STOP:
                return
            self.in_service += 1
            try:
                yield from self.service_fn(item, index)
            finally:
                self.in_service -= 1
                self.serviced += 1

    def stop(self) -> None:
        """Ask every worker to exit once the queue drains."""
        for _ in range(self.n_workers):
            self.queue.put_sentinel()

    def drained(self) -> Optional[Event]:
        """All-workers-exited event (for the shutdown joiner)."""
        return self.env.all_of(self._procs)
