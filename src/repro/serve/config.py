"""Serving-tier configuration.

Separate from :class:`repro.config.CostModel` (which calibrates the
*hardware*): a :class:`ServeConfig` describes one service deployment —
how many servers and client ranks, worker-pool shape, admission limits,
the load-balancing policy and the workload's statistical shape.  It is
a frozen dataclass so it can ride inside experiment cache keys.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = ["ServeConfig", "POLICIES", "ARRIVALS", "SERVICE_DISTS"]

POLICIES = ("round_robin", "least_loaded", "consistent_hash")
ARRIVALS = ("poisson", "bursty")
SERVICE_DISTS = ("fixed", "exp", "pareto")


@dataclass(frozen=True)
class ServeConfig:
    # ------------------------------------------------------- deployment
    n_servers: int = 2          #: server ranks (nodes 0..n_servers-1)
    n_client_ranks: int = 2     #: load-generator ranks (one node each)
    workers: int = 2            #: worker processes per server
    queue_depth: int = 32       #: bounded request queue per server
    #: client-side admission window: max in-flight RPCs per client rank
    window: int = 16
    #: arrivals that may park waiting for a window slot before the
    #: client sheds them outright (bounds client-side memory)
    client_queue: int = 16
    policy: str = "round_robin"     #: front-switch balancing policy
    hash_replicas: int = 32         #: ring replicas (consistent_hash)

    # --------------------------------------------------------- workload
    #: simulated-client id space multiplexed over the client ranks
    simulated_clients: int = 1_000_000
    arrivals: str = "poisson"   #: "poisson" | "bursty"
    burst_factor: float = 6.0   #: burst-state rate multiplier (bursty)
    burst_fraction: float = 0.15  #: fraction of time in the burst state
    requests: int = 1000        #: total requests across all client ranks
    req_bytes_min: int = 64     #: bounded-Pareto request size floor
    req_bytes_alpha: float = 1.3
    req_bytes_cap: int = 16384  #: tail cap (crosses into rendezvous)
    reply_bytes: int = 256
    service_dist: str = "exp"   #: "fixed" | "exp" | "pareto"
    service_us: float = 200.0   #: mean service time per request
    service_alpha: float = 2.2
    service_cap_us: float = 20_000.0
    seed: int = 1

    # ---------------------------------------------------------- helpers
    @property
    def capacity_rps(self) -> float:
        """Nominal service capacity: workers / mean service time."""
        return self.n_servers * self.workers / (self.service_us * 1e-6)

    def offered_rps(self, rho: float) -> float:
        return rho * self.capacity_rps

    def replace(self, **changes) -> "ServeConfig":
        return dataclasses.replace(self, **changes)

    def validate(self) -> None:
        if self.n_servers < 1 or self.n_client_ranks < 1:
            raise ValueError("need at least one server and one client rank")
        if self.workers < 1 or self.queue_depth < 1 or self.window < 1:
            raise ValueError("workers, queue_depth and window must be >= 1")
        if self.client_queue < 0:
            raise ValueError("client_queue must be >= 0")
        if self.policy not in POLICIES:
            raise ValueError(f"unknown policy {self.policy!r} "
                             f"(known: {POLICIES})")
        if self.arrivals not in ARRIVALS:
            raise ValueError(f"unknown arrivals {self.arrivals!r} "
                             f"(known: {ARRIVALS})")
        if self.service_dist not in SERVICE_DISTS:
            raise ValueError(f"unknown service_dist {self.service_dist!r} "
                             f"(known: {SERVICE_DISTS})")
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if not 0 < self.req_bytes_min <= self.req_bytes_cap:
            raise ValueError("need 0 < req_bytes_min <= req_bytes_cap")
        if self.service_us <= 0:
            raise ValueError("service_us must be positive")
        if self.simulated_clients < 1:
            raise ValueError("simulated_clients must be >= 1")
