"""Wire format of the serving tier's RPC messages.

A request is an EADI message whose first :data:`HEADER_BYTES` carry the
request header; the remainder is opaque payload (sized by the workload's
heavy-tailed sampler, content irrelevant to the simulation).  The reply
is an EADI message back to the requesting rank under the request's tag;
its first byte is the reply flag (:data:`R_OK` / :data:`R_SHED`).

The header embeds everything the server needs to service the request
*deterministically from the request's identity alone*: the simulated
client id (multiplexing: many clients ride one rank/endpoint), the
open-loop arrival timestamp (also the server's queue priority key, so
service order never depends on same-instant delivery permutations), the
pre-sampled service time and the reply size.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = ["HEADER_BYTES", "K_REQUEST", "K_STOP", "R_OK", "R_SHED",
           "RequestHeader", "pack_header", "unpack_header"]

#: kind, client_id, arrival_ns, service_ns, reply_bytes (+ pad to 32)
_HEADER = struct.Struct("<BQQQI")
HEADER_BYTES = 32

K_REQUEST = 1
K_STOP = 2

R_OK = 1
R_SHED = 2


@dataclass(frozen=True)
class RequestHeader:
    kind: int
    client_id: int
    arrival_ns: int
    service_ns: int
    reply_bytes: int


def pack_header(kind: int, client_id: int = 0, arrival_ns: int = 0,
                service_ns: int = 0, reply_bytes: int = 0) -> bytes:
    raw = _HEADER.pack(kind, client_id, arrival_ns, service_ns,
                       reply_bytes)
    return raw.ljust(HEADER_BYTES, b"\0")


def unpack_header(data: bytes) -> RequestHeader:
    kind, client_id, arrival_ns, service_ns, reply_bytes = \
        _HEADER.unpack(data[:_HEADER.size])
    return RequestHeader(kind, client_id, arrival_ns, service_ns,
                         reply_bytes)
