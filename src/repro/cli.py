"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``evaluate``   — regenerate the paper's tables/figures (+ ablations)
* ``latency``    — one-way latency for a message size and architecture
* ``bandwidth``  — bandwidth sweep over message sizes
* ``timeline``   — the 0-byte stage timeline (Figure 7 view)
* ``trace``      — run a traced message and dump a chrome://tracing JSON
* ``report``     — run a short workload and print the cluster report
* ``faults``     — run a fault-injected transfer and print the recovery
  summary (optionally dumping a trace with the fault markers)
* ``audit``      — run clean and faulted transfers with the runtime
  invariant auditor attached and print the checker summary
  (``--selftest`` proves each checker fires on a seeded violation)
* ``fuzz``       — seeded schedule-perturbation fuzzing: random
  workloads run under shuffled tie-break seeds and checked by
  differential delivery oracles (``--shrink`` minimizes failures to
  ready-to-commit regression tests)
* ``observe``    — run a telemetry-enabled ping-pong and print the
  message-lifecycle view: latency percentiles, the per-stage
  critical-path breakdown (Figure 7 per message), the top-K slowest
  messages, per-message drill-downs and a metrics dump
* ``scale``      — host vs NIC collectives (and congestion scenarios)
  on a chosen fabric at a chosen rank count: one scale-sweep point,
  with the critical-path stage table
* ``diff``       — regression attribution between two run ledgers (or
  BENCH_*.json perf artifacts): ranked per-stage and per-metric delta
  tables naming the stage whose share grew
* ``postmortem`` — render a flight-recorder ``postmortem-*.json``:
  last-K event timeline, spans open at death, metrics snapshot

Run artifacts: ``evaluate``, ``observe``, ``scale`` and ``serve`` all
take ``--ledger-out FILE`` to write a self-describing ``repro-run/1``
ledger for later ``repro diff``.  ``faults``, ``fuzz`` and ``serve``
take ``--recorder`` to ride the crash flight recorder along
(``REPRO_RECORDER=1`` does the same globally).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.cluster import Cluster
from repro.config import DAWNING_3000

__all__ = ["main", "build_parser"]


def _ensure_parent(path: str) -> None:
    """Create the parent directory of a CLI artifact output, so a
    fresh ``--*-out deep/new/dir/file.json`` path cannot fail after
    the run's work is already done."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Semi-User-Level Communication Architecture "
                    "(IPPS 2002) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    ev = sub.add_parser("evaluate", help="regenerate the paper evaluation")
    ev.add_argument("--no-ablations", action="store_true")
    ev.add_argument("--no-extensions", action="store_true")
    ev.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="run experiment cells on N worker processes")
    ev.add_argument("--only", action="append", metavar="NAME",
                    help="run only the named experiment (repeatable)")
    ev.add_argument("--no-cache", action="store_true",
                    help="recompute every cell, ignoring the run cache")
    ev.add_argument("--cache-dir", metavar="DIR", default=None,
                    help="run-cache directory ($REPRO_CACHE_DIR or "
                         ".repro-cache by default)")
    ev.add_argument("--audit", action="store_true",
                    help="attach the runtime invariant auditor to every "
                         "cluster (violations abort the run)")
    ev.add_argument("--ledger-out", metavar="FILE", default=None,
                    help="write a repro-run/1 ledger (stage table, "
                         "events, provenance) for later `repro diff`")

    lat = sub.add_parser("latency", help="one-way latency measurement")
    lat.add_argument("--bytes", type=int, default=0)
    lat.add_argument("--architecture", default="semi_user",
                     choices=["semi_user", "user_level", "kernel_level"])
    lat.add_argument("--intra-node", action="store_true")
    lat.add_argument("--repeats", type=int, default=3)

    bw = sub.add_parser("bandwidth", help="bandwidth sweep")
    bw.add_argument("--sizes", type=int, nargs="+",
                    default=[1024, 4096, 16384, 65536, 131072])
    bw.add_argument("--intra-node", action="store_true")

    sub.add_parser("timeline", help="0-byte stage timeline (Figure 7)")

    tr = sub.add_parser("trace", help="dump a chrome://tracing JSON")
    tr.add_argument("--output", default="bcl_trace.json")
    tr.add_argument("--bytes", type=int, default=4096)
    tr.add_argument("--message-id", type=int, default=None, metavar="N",
                    help="export only the records tagged with message N "
                         "(negative N indexes this run's messages from "
                         "the end, -1 = last)")

    rp = sub.add_parser("report", help="cluster utilisation report")
    rp.add_argument("--bytes", type=int, default=65536)
    rp.add_argument("--messages", type=int, default=8)

    fl = sub.add_parser("faults",
                        help="fault-injected transfer + recovery summary")
    fl.add_argument("--bytes", type=int, default=65536)
    fl.add_argument("--messages", type=int, default=8)
    fl.add_argument("--seed", type=int, default=1)
    fl.add_argument("--drop", type=float, default=0.05, metavar="RATE",
                    help="per-packet drop probability (default 0.05)")
    fl.add_argument("--corrupt", type=float, default=0.0, metavar="RATE")
    fl.add_argument("--duplicate", type=float, default=0.0, metavar="RATE")
    fl.add_argument("--reorder", type=float, default=0.0, metavar="RATE")
    fl.add_argument("--trace-output", metavar="FILE", default=None,
                    help="also dump a chrome://tracing JSON with the "
                         "injected faults as instant markers")
    fl.add_argument("--recorder", action="store_true",
                    help="ride the crash flight recorder along; a "
                         "failed run dumps postmortem-*.json")

    au = sub.add_parser("audit",
                        help="run audited transfers (clean + faulted) and "
                             "print the invariant-checker summary")
    au.add_argument("--bytes", type=int, default=65536)
    au.add_argument("--messages", type=int, default=8)
    au.add_argument("--seed", type=int, default=1)
    au.add_argument("--drop", type=float, default=0.05, metavar="RATE",
                    help="drop rate of the faulted phase (default 0.05)")
    au.add_argument("--selftest", action="store_true",
                    help="also inject one deliberate violation per "
                         "checker and confirm each raises AuditError")

    fz = sub.add_parser("fuzz",
                        help="schedule-perturbation fuzzing: random "
                             "workloads under shuffled tie-break seeds, "
                             "checked by differential delivery oracles")
    fz.add_argument("--seed", type=int, default=1,
                    help="campaign base seed; workload and schedule "
                         "seeds are derived from it (default 1)")
    fz.add_argument("--runs", type=int, default=50, metavar="K",
                    help="number of random workloads (default 50)")
    fz.add_argument("--schedules", type=int, default=5, metavar="N",
                    help="tie-break seeds per workload (default 5)")
    fz.add_argument("--max-ops", type=int, default=10,
                    help="max operations per workload (default 10)")
    fz.add_argument("--no-faults", action="store_true",
                    help="generate only fault-free workloads")
    fz.add_argument("--shrink", action="store_true",
                    help="delta-debug each failure to a minimal "
                         "reproducer and emit a regression test")
    fz.add_argument("--out", metavar="DIR", default=None,
                    help="write emitted regression tests here "
                         "(default: print to stdout)")
    fz.add_argument("--quiet", action="store_true",
                    help="suppress the per-workload progress line")
    fz.add_argument("--recorder", action="store_true",
                    help="ride the crash flight recorder along; each "
                         "oracle failure dumps postmortem-*.json")

    ob = sub.add_parser("observe",
                        help="telemetry-enabled ping-pong: latency "
                             "percentiles, per-stage critical paths, "
                             "slowest messages, metrics dump")
    ob.add_argument("--bytes", type=int, default=0,
                    help="payload size (default 0, the Figure 7 case)")
    ob.add_argument("--messages", type=int, default=4)
    ob.add_argument("--intra-node", action="store_true")
    ob.add_argument("--drop", type=float, default=0.0, metavar="RATE",
                    help="per-packet drop probability, to observe "
                         "go-back-N recovery anomalies (default 0)")
    ob.add_argument("--seed", type=int, default=1,
                    help="fault-plan seed when --drop is set")
    ob.add_argument("--top", type=int, default=0, metavar="K",
                    help="also list the K slowest messages")
    ob.add_argument("--message-id", type=int, default=None, metavar="N",
                    help="drill into message N: per-stage breakdown "
                         "plus the causal span tree (negative N indexes "
                         "this run's messages from the end, -1 = last)")
    ob.add_argument("--metrics", choices=["prom", "json"], default=None,
                    help="also dump the metrics registry")
    ob.add_argument("--spans-out", metavar="FILE", default=None,
                    help="write the span trees as flow-linked "
                         "chrome://tracing JSON")
    ob.add_argument("--ledger-out", metavar="FILE", default=None,
                    help="write a repro-run/1 ledger of this run for "
                         "later `repro diff`")

    sc = sub.add_parser("scale",
                        help="one scale-sweep point: host vs NIC "
                             "collective latency on a fabric, with "
                             "the critical-path stage table")
    sc.add_argument("--ranks", type=int, default=64,
                    help="rank count == node count (default 64)")
    sc.add_argument("--topology", default="fat_tree",
                    choices=["single_switch", "switch_tree", "mesh2d",
                             "fat_tree"])
    sc.add_argument("--op", default="barrier",
                    choices=["barrier", "allreduce"])
    sc.add_argument("--collectives", default=None,
                    choices=["host", "nic"],
                    help="run only one policy (default: both + speedup)")
    sc.add_argument("--congestion", action="append", metavar="SCENARIO",
                    choices=["incast", "hotspot", "permutation"],
                    help="also run a congestion scenario (repeatable)")
    sc.add_argument("--ledger-out", metavar="FILE", default=None,
                    help="write a repro-run/1 ledger of the measured "
                         "points for later `repro diff`")

    sv = sub.add_parser("serve",
                        help="serving-tier offered-load sweep: "
                             "p50/p99/p99.9 tail latency, goodput and "
                             "shed counts through saturation")
    sv.add_argument("--loads", default="0.5,0.8,0.95,1.1,1.4",
                    help="offered loads as fractions of nominal "
                         "capacity (comma-separated)")
    sv.add_argument("--servers", type=int, default=2)
    sv.add_argument("--clients", type=int, default=2,
                    help="client (load-generator) ranks")
    sv.add_argument("--workers", type=int, default=2,
                    help="worker processes per server")
    sv.add_argument("--queue-depth", type=int, default=32,
                    help="bounded request queue per server")
    sv.add_argument("--window", type=int, default=16,
                    help="max in-flight RPCs per client rank")
    sv.add_argument("--client-queue", type=int, default=16,
                    help="arrivals that may park for a window slot "
                         "before the client sheds them")
    sv.add_argument("--policy", default="round_robin",
                    choices=["round_robin", "least_loaded",
                             "consistent_hash"])
    sv.add_argument("--arrivals", default="poisson",
                    choices=["poisson", "bursty"])
    sv.add_argument("--requests", type=int, default=1000,
                    help="total requests per load point")
    sv.add_argument("--service-us", type=float, default=200.0,
                    help="mean service time per request")
    sv.add_argument("--service-dist", default="exp",
                    choices=["fixed", "exp", "pareto"])
    sv.add_argument("--seed", type=int, default=1)
    sv.add_argument("--stages", action="store_true",
                    help="also print the aggregate critical-path "
                         "stage table per load point")
    sv.add_argument("--metrics", choices=["prom", "json"], default=None,
                    help="also dump the telemetry metrics registry "
                         "(last load point)")
    sv.add_argument("--ledger-out", metavar="FILE", default=None,
                    help="write a repro-run/1 ledger of the last load "
                         "point for later `repro diff`")
    sv.add_argument("--recorder", action="store_true",
                    help="ride the crash flight recorder along; a "
                         "crashed load point dumps postmortem-*.json")

    df = sub.add_parser("diff",
                        help="regression attribution between two run "
                             "ledgers or BENCH_*.json artifacts: ranked "
                             "stage/metric deltas, bounding stage named")
    df.add_argument("run_a", help="baseline ledger or BENCH_*.json")
    df.add_argument("run_b", help="candidate ledger or BENCH_*.json")
    df.add_argument("--metric", metavar="NAME", default=None,
                    help="headline metric for the attribution line "
                         "(substring match, e.g. p99)")
    df.add_argument("--top", type=int, default=10,
                    help="rows per delta table (default 10)")
    df.add_argument("--max-stage-drift", type=float, default=None,
                    metavar="PCT",
                    help="exit 1 if any stage moved more than PCT%% of "
                         "run A's total stage time (CI noise gate)")

    pm = sub.add_parser("postmortem",
                        help="render a flight-recorder postmortem-*.json: "
                             "last-K timeline, open spans, metrics")
    pm.add_argument("file", help="postmortem-*.json to render")
    pm.add_argument("--last", type=int, default=20, metavar="K",
                    help="rows per timeline section (default 20)")
    return parser


def _cmd_evaluate(args) -> int:
    from repro.experiments.cache import RunCache
    from repro.experiments.runner import run_all
    if args.audit:
        # Global switch, exported via REPRO_AUDIT so --jobs N worker
        # processes inherit it.  The auditor is a pure observer, so
        # audited results (and cache entries) are byte-identical.
        from repro import audit
        audit.enable()
    cache = None if args.no_cache else RunCache(args.cache_dir)
    sink = {} if args.ledger_out else None
    try:
        results = run_all(include_ablations=not args.no_ablations,
                          include_extensions=not args.no_extensions,
                          jobs=args.jobs, cache=cache, only=args.only,
                          ledger_sink=sink)
    except ValueError as exc:
        print(f"repro evaluate: error: {exc}", file=sys.stderr)
        return 2
    for result in results:
        print(result.format())
        print()
    if args.ledger_out:
        from repro.telemetry.ledger import make_ledger, write_ledger
        doc = make_ledger(
            "evaluate", cfg=DAWNING_3000,
            events=sink.get("events") or None,
            stages=sink.get("stages"),
            extra={"cells": sink.get("cells", 0),
                   "experiments": [r.experiment_id for r in results]})
        write_ledger(args.ledger_out, doc)
        print(f"wrote run ledger to {args.ledger_out}")
    return 0


def _cmd_latency(args) -> int:
    from repro.experiments.common import (
        measure_architecture_latency,
        measure_kernel_level_latency,
    )
    from repro.instrument.measure import measure_intra_node

    if args.intra_node:
        sample = measure_intra_node(Cluster(n_nodes=1), args.bytes,
                                    repeats=args.repeats)
        value = sample.latency_us
    elif args.architecture == "kernel_level":
        value = measure_kernel_level_latency(args.bytes,
                                             repeats=args.repeats)
    else:
        value = measure_architecture_latency(args.architecture, args.bytes,
                                             repeats=args.repeats)
    where = "intra-node" if args.intra_node else args.architecture
    print(f"{args.bytes}-byte one-way latency ({where}): {value:.2f} us")
    return 0


def _cmd_bandwidth(args) -> int:
    from repro.instrument.measure import measure_intra_node, measure_one_way
    print(f"{'bytes':>9}  {'latency us':>11}  {'MB/s':>8}")
    for nbytes in args.sizes:
        if args.intra_node:
            sample = measure_intra_node(Cluster(n_nodes=1), nbytes,
                                        repeats=2, warmup=1)
        else:
            sample = measure_one_way(Cluster(n_nodes=2), nbytes,
                                     repeats=2, warmup=1)
        print(f"{nbytes:>9}  {sample.latency_us:>11.2f}  "
              f"{sample.bandwidth_mb_s:>8.1f}")
    return 0


def _cmd_timeline(_args) -> int:
    from repro.experiments.timelines import run_fig7
    print(run_fig7().format())
    return 0


def _cmd_trace(args) -> int:
    from repro.instrument.export import write_chrome_trace
    from repro.instrument.measure import measure_one_way
    cluster = Cluster(n_nodes=2, trace=True)
    measure_one_way(cluster, args.bytes, repeats=1, warmup=1)
    message_id = args.message_id
    if message_id is not None and message_id < 0:
        mids = sorted({r.message_id for r in cluster.tracer.records
                       if r.message_id is not None})
        if -message_id <= len(mids):
            message_id = mids[message_id]
    count = write_chrome_trace(cluster.tracer, args.output,
                               message_id=message_id)
    scope = "" if message_id is None else f" for message {message_id}"
    print(f"wrote {count} trace events{scope} to {args.output} "
          "(open in chrome://tracing or Perfetto)")
    return 0


def _cmd_report(args) -> int:
    from repro.instrument.measure import measure_one_way
    from repro.instrument.report import cluster_report
    cluster = Cluster(n_nodes=2)
    measure_one_way(cluster, args.bytes, repeats=args.messages, warmup=1)
    print(cluster_report(cluster).format())
    return 0


def _cmd_faults(args) -> int:
    from repro.config import LOSSY_DAWNING
    from repro.faults import FaultPlan
    from repro.instrument.measure import measure_one_way
    from repro.instrument.recovery import RecoveryTracker, recovery_summary

    plan = FaultPlan(seed=args.seed, drop_rate=args.drop,
                     corrupt_rate=args.corrupt,
                     duplicate_rate=args.duplicate,
                     reorder_rate=args.reorder)
    cluster = Cluster(n_nodes=2, cfg=LOSSY_DAWNING, fault_plan=plan,
                      trace=(args.trace_output is not None
                             or args.recorder or None),
                      recorder=args.recorder or None)
    tracker = RecoveryTracker(cluster)
    try:
        sample = measure_one_way(cluster, args.bytes,
                                 repeats=args.messages, warmup=1)
    except BaseException as exc:
        if cluster.recorder is not None \
                and type(exc).__name__ != "AuditError":
            path = cluster.recorder.dump(
                f"faults: {type(exc).__name__}", note=str(exc))
            if path:
                print(f"repro faults: postmortem written to {path}",
                      file=sys.stderr)
        raise
    print(f"plan: {plan.describe()}")
    print(f"{args.bytes}-byte one-way latency under faults: "
          f"{sample.latency_us:.2f} us "
          f"({sample.bandwidth_mb_s:.1f} MB/s goodput), payloads "
          f"{'intact' if sample.received_payloads_ok else 'CORRUPTED'}")
    for key, value in recovery_summary(cluster, tracker).items():
        shown = f"{value:.2f}" if isinstance(value, float) else value
        print(f"  {key:24s} {shown}")
    if args.trace_output is not None:
        from repro.instrument.export import write_chrome_trace
        count = write_chrome_trace(cluster.tracer, args.trace_output)
        print(f"wrote {count} trace events to {args.trace_output} "
              "(faults appear as instant markers)")
    return 0


def _audit_selftest() -> int:
    """One deliberate violation per checker; each must raise AuditError."""
    from repro import audit
    from repro.audit import AuditError, Auditor
    from repro.instrument.measure import measure_one_way
    from repro.sim import Environment, Event, Store

    failures = []

    def expect(name, fn):
        try:
            fn()
        except AuditError as exc:
            first = exc.violations[0]
            print(f"  {name:28s} PASS  ({first.layer}/{first.rule})")
        else:
            failures.append(name)
            print(f"  {name:28s} FAIL  (no AuditError raised)")

    def past_event():
        env = Environment()
        Auditor(env)
        env._now = 100
        ev = Event(env)
        ev._ok = True
        ev._value = None
        env._schedule_at(ev, 50)
        env.run()

    def orphaned_waiter():
        env = Environment()
        Auditor(env)
        store = Store(env)
        store.get()  # nobody ever waits on the getter
        env.run()

    def byte_conservation():
        cluster = Cluster(n_nodes=2)
        measure_one_way(cluster, 4096, repeats=1, warmup=0)
        senders = [s for mcp in cluster.mcps
                   for s in mcp._senders.values()]
        senders[0].bytes_registered += 1   # cook the ledger
        cluster.env.run()

    def pin_leak():
        cluster = Cluster(n_nodes=1)
        proc = cluster.spawn(0)
        vaddr = proc.space.alloc(8192)
        proc.space.pin(vaddr, 8192)        # never unpinned
        cluster.nodes[0].exit_process(proc.pid)

    def credit_overflow():
        cluster = Cluster(n_nodes=2)
        from repro.upper.job import run_spmd

        def tamper(ep):
            ep.eadi._credits[1 - ep.rank] = \
                ep.eadi._credits_initial + 5
            ep.eadi._release_credits(1 - ep.rank, 1)
            yield cluster.env.sleep(0)

        run_spmd(cluster, 2, tamper)

    def waiter_survives_teardown():
        cluster = Cluster(n_nodes=2)
        from repro.upper.job import run_spmd

        def leak(ep):
            ep.close()
            ep.eadi._credit_waiters[1 - ep.rank] = [Event(cluster.env)]
            yield cluster.env.sleep(0)
            return ep

        endpoints = run_spmd(cluster, 2, leak)   # keep endpoints alive
        assert endpoints
        cluster.auditor.check_quiesce()

    audit.enable()
    try:
        print("auditor selftest (each case must raise AuditError):")
        expect("sim/past-event", past_event)
        expect("sim/orphaned-waiter", orphaned_waiter)
        expect("firmware/byte-conservation", byte_conservation)
        expect("kernel/pin-leak", pin_leak)
        expect("bcl/credit-overflow", credit_overflow)
        expect("bcl/waiter-teardown", waiter_survives_teardown)
    finally:
        audit.disable()
    if failures:
        print(f"selftest FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("selftest PASS: all checkers fire")
    return 0


def _cmd_audit(args) -> int:
    from repro import audit
    from repro.config import LOSSY_DAWNING
    from repro.faults import FaultPlan
    from repro.instrument.measure import measure_one_way

    audit.enable()
    try:
        for label, kwargs in (
                ("clean", {}),
                ("faulted", {"cfg": LOSSY_DAWNING,
                             "fault_plan": FaultPlan(
                                 seed=args.seed, drop_rate=args.drop)})):
            cluster = Cluster(n_nodes=2, **kwargs)
            sample = measure_one_way(cluster, args.bytes,
                                     repeats=args.messages, warmup=1)
            cluster.env.run()   # drain to quiesce: conservation checks
            report = cluster.auditor.report()
            print(f"{label}: {args.messages} x {args.bytes} B  "
                  f"{sample.latency_us:.2f} us  payloads "
                  f"{'intact' if sample.received_payloads_ok else 'BAD'}")
            for key, value in report.items():
                print(f"  {key:20s} {value}")
        print("audit: zero violations")
    finally:
        audit.disable()
    if args.selftest:
        return _audit_selftest()
    return 0


def _cmd_fuzz(args) -> int:
    import os

    from repro.fuzz import emit_regression_test, run_campaign

    def progress(index, spec, failure):
        if args.quiet:
            return
        verdict = "ok" if failure is None else f"FAIL[{failure.oracle}]"
        print(f"  [{index + 1:3d}/{args.runs}] {spec.describe():72s} "
              f"{verdict}")

    print(f"fuzz: seed={args.seed} runs={args.runs} "
          f"schedules={args.schedules} max-ops={args.max_ops}"
          f"{' (fault-free)' if args.no_faults else ''}")
    if args.recorder:
        from repro.telemetry import recorder as recorder_mod
        recorder_mod.enable()
    try:
        result = run_campaign(args.seed, args.runs,
                              n_schedules=args.schedules,
                              max_ops=args.max_ops,
                              allow_faults=not args.no_faults,
                              shrink=args.shrink,
                              progress=progress)
    finally:
        if args.recorder:
            recorder_mod.disable()
    mix = ", ".join(f"{layer} x{count}"
                    for layer, count in sorted(result.by_layer.items()))
    print(f"fuzz: {result.checked} workloads checked ({mix}) under "
          f"tie-break seeds {list(result.schedule_seeds)}")
    if result.ok:
        print("fuzz: all oracles passed")
        return 0
    for failure in result.failures:
        print(f"fuzz: {failure.describe()}")
    for index, shrunk in enumerate(result.shrunk):
        name = f"fuzz_seed{args.seed}_case{index}"
        print(f"fuzz: shrunk to {len(shrunk.spec.ops)} ops in "
              f"{shrunk.evals} evals: {shrunk.spec.describe()}")
        source = emit_regression_test(shrunk, name)
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, f"test_{name}.py")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(source)
            print(f"fuzz: regression test written to {path}")
        else:
            print("fuzz: regression test source:\n")
            print(source)
    print(f"fuzz: {len(result.failures)} workload(s) failed")
    return 1


def _cmd_observe(args) -> int:
    import json

    from repro.telemetry.observe import (
        render_drilldown,
        render_summary,
        render_top,
        run_ping_pong,
    )

    cluster, _sample = run_ping_pong(nbytes=args.bytes,
                                     messages=args.messages,
                                     intra_node=args.intra_node,
                                     drop=args.drop, seed=args.seed)
    session = cluster.telemetry
    print(render_summary(session, args.bytes))
    if args.top:
        print()
        print(render_top(session, args.top))
    if args.message_id is not None:
        mids = session.message_ids()
        mid = args.message_id
        if mid < 0:                     # index this run's messages
            if -mid <= len(mids):
                mid = mids[mid]
        if mid not in mids:
            print(f"repro observe: error: no traced message "
                  f"{args.message_id} (have {mids})", file=sys.stderr)
            return 2
        print()
        print(render_drilldown(session, mid))
    if args.spans_out is not None:
        events = session.chrome_events()
        _ensure_parent(args.spans_out)
        with open(args.spans_out, "w", encoding="utf-8") as fh:
            json.dump({"traceEvents": events, "displayTimeUnit": "ns"}, fh)
        print(f"\nwrote {len(events)} span events to {args.spans_out} "
              "(flow arrows link the lifecycle hops)")
    if args.ledger_out is not None:
        from repro.telemetry.ledger import write_ledger
        write_ledger(args.ledger_out,
                     session.to_ledger("observe", seed=args.seed))
        print(f"wrote run ledger to {args.ledger_out}")
    if args.metrics == "prom":
        print()
        print(session.registry.render_prometheus(), end="")
    elif args.metrics == "json":
        print()
        print(session.registry.to_json())
    return 0


def _cmd_scale(args) -> int:
    from repro.experiments.scale import (measure_congestion_point,
                                         measure_scale_point)

    policies = [args.collectives] if args.collectives else ["host", "nic"]
    points = {}
    for policy in policies:
        p = measure_scale_point(n_ranks=args.ranks,
                                topology=args.topology,
                                collectives=policy, op=args.op)
        points[policy] = p
        print(f"{args.op} x {args.ranks} ranks on {args.topology} "
              f"({policy}): {p['latency_us']:.2f} us "
              f"[{p['events']:,} events]")
        for stage, us in p["stage_table"][:6]:
            marker = "  <- bounding" if stage == p["bounding_stage"] \
                else ""
            print(f"  {stage:<14s} {us:10.2f} us{marker}")
    if len(points) == 2 and points["nic"]["latency_us"]:
        speedup = (points["host"]["latency_us"]
                   / points["nic"]["latency_us"])
        print(f"NIC offload speedup: {speedup:.2f}x")
    for scenario in args.congestion or ():
        p = measure_congestion_point(n_ranks=args.ranks,
                                     topology=args.topology,
                                     scenario=scenario)
        print(f"{scenario} x {args.ranks} ranks on {args.topology}: "
              f"{p['elapsed_us']:.2f} us, {p['bandwidth_mb_s']:.1f} MB/s "
              f"aggregate, tail spread {p['tail_spread_us']:.2f} us")
    if args.ledger_out:
        from repro.telemetry.ledger import make_ledger, write_ledger
        stages: dict[str, int] = {}
        events = 0
        for p in points.values():
            for stage, us in p.get("stage_table") or []:
                stages[stage] = stages.get(stage, 0) + int(round(us * 1000))
            events += int(p.get("events", 0))
        doc = make_ledger(
            "scale", cfg=DAWNING_3000, events=events or None,
            stages=stages,
            extra={"n_ranks": args.ranks, "topology": args.topology,
                   "op": args.op,
                   "latency_us": {policy: p["latency_us"]
                                  for policy, p in points.items()}})
        write_ledger(args.ledger_out, doc)
        print(f"wrote run ledger to {args.ledger_out}")
    return 0


def _cmd_serve(args) -> int:
    from repro.cluster import Cluster
    from repro.experiments.scale import _StageAggregator
    from repro.serve import ServeConfig, run_serve

    scfg = ServeConfig(n_servers=args.servers,
                       n_client_ranks=args.clients,
                       workers=args.workers,
                       queue_depth=args.queue_depth,
                       window=args.window,
                       client_queue=args.client_queue,
                       policy=args.policy,
                       arrivals=args.arrivals,
                       requests=args.requests,
                       service_us=args.service_us,
                       service_dist=args.service_dist,
                       seed=args.seed)
    try:
        scfg.validate()
        loads = [float(tok) for tok in args.loads.split(",") if tok.strip()]
    except ValueError as exc:
        print(f"repro serve: error: {exc}", file=sys.stderr)
        return 2
    print(f"{scfg.n_servers} servers x {scfg.workers} workers "
          f"(queue {scfg.queue_depth}), {scfg.n_client_ranks} client "
          f"ranks (window {scfg.window} + {scfg.client_queue} parked), "
          f"policy {scfg.policy}, {scfg.arrivals} arrivals, "
          f"capacity {scfg.capacity_rps:,.0f} rps")
    header = (f"{'rho':>5s} {'offered':>10s} {'goodput':>10s} "
              f"{'p50_us':>9s} {'p99_us':>9s} {'p99.9_us':>9s} "
              f"{'ok':>6s} {'shed_s':>6s} {'shed_c':>6s} {'parks':>6s} "
              f"{'stalls':>6s}")
    print(header)
    print("-" * len(header))
    session = None
    for rho in loads:
        cluster = Cluster(n_nodes=scfg.n_servers + scfg.n_client_ranks,
                          trace=args.stages or None,
                          telemetry=(True if args.metrics
                                     or args.ledger_out else None),
                          recorder=args.recorder or None)
        agg = None
        if args.stages:
            agg = _StageAggregator(cluster.tracer)
            agg.armed = True
        report = run_serve(scfg, rho, cluster=cluster)
        fmt = lambda v: f"{v:9.1f}" if v is not None else f"{'-':>9s}"
        print(f"{rho:5.2f} {report.offered_rps:10,.0f} "
              f"{report.goodput_rps:10,.0f} {fmt(report.p50_us)} "
              f"{fmt(report.p99_us)} {fmt(report.p999_us)} "
              f"{report.completed_ok:6d} {report.shed_server:6d} "
              f"{report.shed_client:6d} {report.admission_parks:6d} "
              f"{report.credit_stalls:6d}")
        if agg is not None:
            table = agg.table()
            for stage, us in table[:6]:
                marker = "  <- bounding" if table and stage == table[0][0] \
                    else ""
                print(f"      {stage:<14s} {us:12.2f} us{marker}")
        session = cluster.telemetry
    if args.metrics and session is not None:
        print()
        if args.metrics == "prom":
            print(session.registry.render_prometheus(), end="")
        else:
            print(session.registry.to_json())
    if args.ledger_out and session is not None:
        from repro.telemetry.ledger import write_ledger
        write_ledger(args.ledger_out,
                     session.to_ledger(
                         "serve", seed=scfg.seed,
                         extra={"loads": loads,
                                "policy": scfg.policy,
                                "arrivals": scfg.arrivals}))
        print(f"wrote run ledger to {args.ledger_out}")
    return 0


def _cmd_diff(args) -> int:
    from repro.telemetry.diff import diff_runs

    try:
        diff = diff_runs(args.run_a, args.run_b)
    except (OSError, ValueError, KeyError) as exc:
        print(f"repro diff: error: {exc}", file=sys.stderr)
        return 2
    print(diff.render(top=args.top))
    if args.metric:
        print()
        print(diff.attribution(metric=args.metric))
    if args.max_stage_drift is not None:
        drift = diff.max_stage_drift_pct
        if drift > args.max_stage_drift:
            print(f"FAIL: stage drift {drift:.1f}% exceeds the "
                  f"{args.max_stage_drift:g}% ceiling "
                  f"(top stage: {diff.top_stage})", file=sys.stderr)
            return 1
        print(f"ok: max stage drift {drift:.1f}% within the "
              f"{args.max_stage_drift:g}% ceiling")
    return 0


def _cmd_postmortem(args) -> int:
    from repro.telemetry.recorder import load_postmortem, render_postmortem

    try:
        doc = load_postmortem(args.file)
    except (OSError, ValueError) as exc:
        print(f"repro postmortem: error: {exc}", file=sys.stderr)
        return 2
    print(render_postmortem(doc, last=args.last))
    return 0


_COMMANDS = {
    "evaluate": _cmd_evaluate,
    "latency": _cmd_latency,
    "bandwidth": _cmd_bandwidth,
    "timeline": _cmd_timeline,
    "trace": _cmd_trace,
    "report": _cmd_report,
    "faults": _cmd_faults,
    "audit": _cmd_audit,
    "fuzz": _cmd_fuzz,
    "observe": _cmd_observe,
    "scale": _cmd_scale,
    "serve": _cmd_serve,
    "diff": _cmd_diff,
    "postmortem": _cmd_postmortem,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
