"""Calibrated cost model for the simulated DAWNING-3000 testbed.

Every timing in the reproduction comes from one :class:`CostModel`
instance.  The default calibration, :data:`DAWNING_3000`, is derived
from the numbers the paper reports directly (PIO word costs, wire rate)
plus a stage decomposition chosen so the simulated stack lands on the
paper's measured figures.  The decomposition satisfies, exactly:

* send-side host overhead (0-byte, pin-down hit)
  = compose + trap-enter + security check + pin-down lookup + trap-exit
    + 15-word descriptor PIO fill
  = 0.45 + 0.90 + 0.87 + 0.40 + 0.82 + 15*0.24 = **7.04 us** (paper Fig 5),
  with the PIO fill (3.60 us) "more than half" of it, as the paper notes;
* receive-side host overhead = poll + event check = 0.58 + 0.43
  = **1.01 us** (paper Fig 6);
* 0-byte one-way = 7.04 (host send) + 2.83 (MCP send) + 1.45 (wire
  inject + 8 B header) + 2.05 (switch + 2 links) + 2.82 (MCP recv)
  + 1.10 (completion-event DMA) + 1.01 (recv poll) = **18.30 us**
  (paper Fig 7 / 5);
* MCP reliable-protocol share = 2.83 + 2.82 = **5.65 us** (paper 5.2:
  "the other 5.65 us is to perform the reliable transmission");
* the semi-user extra versus the user-level baseline (which writes a
  compact 4-word virtual-address descriptor + doorbell from user space
  and pays a per-message NIC context check instead):
  7.04 - (0.45 + 4*0.24 + 0.24) - 0.40 = **4.17 us ~= 22 %** of 18.3 us
  (paper 5.2/5.4);
* steady-state wire stage per 4 KB packet = 1.40 + (4096+8)*6.25 ns
  + 0.25 inter-packet gap = 27.30 us -> ~**146-150 MB/s** class peak
  bandwidth, ~91 % of the 160 MB/s physical wire (paper Fig 9 / 5.4);
* intra-node 0-byte = 0.45 + 0.80 + 0.58 + 0.87 = **2.70 us**, and the
  pipelined two-copy shared-memory path peaks at the 391 MB/s memcpy
  rate (paper 5.3).

Units: all ``*_us`` fields are microseconds, ``*_mb_s`` fields are
decimal MB/s (the unit the paper uses: 131072 B / 898 us = 146 MB/s).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

__all__ = ["CostModel", "DAWNING_3000", "DNET_MESH", "LOSSY_DAWNING",
           "dawning_3000", "dnet_mesh", "lossy_dawning"]


@dataclass(frozen=True)
class CostModel:
    """All tunable costs of the simulated platform and protocol stack."""

    # ---------------------------------------------------------------- host
    n_cpus_per_node: int = 4
    cpu_mhz: float = 375.0
    #: Reference frequency the *_us host costs were calibrated at.  Host
    #: software costs scale by (cpu_ref_mhz / cpu_mhz); see the "a faster
    #: CPU will reduce these overheads" ablation.
    cpu_ref_mhz: float = 375.0
    #: raw cache-warm copy rate; the *effective* intra-node peak lands
    #: near the paper's 391 MB/s after per-chunk setup and ring costs
    memcpy_mb_s: float = 425.0
    memcpy_setup_us: float = 0.30
    page_size: int = 4096

    # ----------------------------------------------------------------- PCI
    pio_write_word_us: float = 0.24   # paper 5.1 (measured on the testbed)
    pio_read_word_us: float = 0.98    # paper 5.1
    pio_word_bytes: int = 4
    dma_setup_us: float = 1.00
    dma_mb_s: float = 264.0           # 64-bit / 33 MHz PCI burst rate

    # -------------------------------------------------------------- kernel
    trap_enter_us: float = 0.90
    trap_exit_us: float = 0.82
    security_check_us: float = 0.87
    pindown_lookup_us: float = 0.40       # pin-down page-table hit
    pindown_insert_us: float = 0.50       # install one entry on miss
    pindown_remove_us: float = 0.30       # drop one entry on eviction
    pin_page_us: float = 1.20             # pin one page on miss
    unpin_page_us: float = 0.80
    translate_page_us: float = 0.12       # per-page table walk on miss
    interrupt_dispatch_us: float = 2.50   # kernel-level baseline only
    interrupt_handler_us: float = 3.00
    wakeup_us: float = 1.50
    pindown_capacity_pages: int = 8192    # kernel pin-down table capacity

    # ------------------------------------------------ BCL user library
    compose_us: float = 0.45          # build the send request in user space
    recv_poll_us: float = 0.58        # poll the completion queue
    event_check_us: float = 0.43      # decode/validate one event record
    send_complete_us: float = 0.82    # reap a send-completion event (paper)
    #: entries per user-space completion queue (None = unbounded)
    completion_queue_entries: int = 256
    descriptor_base_words: int = 15   # semi-user descriptor: phys page list
    descriptor_words_per_page: int = 2

    # ------------------------------------------------------ NIC / firmware
    nic_sram_bytes: int = 1 << 20     # LANai local memory (1 MB class)
    send_ring_entries: int = 64
    staging_buffers: int = 2          # double buffering host-DMA vs wire
    mcp_fetch_request_us: float = 0.82  # MCP reads a request from the ring
    mcp_send_proc_us: float = 2.83    # reliable-protocol send processing
    mcp_recv_proc_us: float = 2.82    # reliable-protocol recv processing
    mcp_ack_proc_us: float = 0.60     # handle one ack (off critical path)
    event_record_bytes: int = 32
    mtu: int = 4096
    #: cut-through granularity: wire injection starts once this much of
    #: a fragment is staged, and the receive-side scatter DMA overlaps
    #: packet reception except for this trailing remainder
    pipeline_chunk_bytes: int = 1024
    retransmit_timeout_us: float = 1000.0
    send_window: int = 8              # go-back-N window per destination
    #: receiver NACKs the first arrival after a gap, triggering a fast
    #: retransmit instead of a full timeout wait
    nack_enabled: bool = True

    # ---------------------------------------------------------------- wire
    wire_mb_s: float = 160.0          # paper 5.4: Myrinet "around 160 MB/s"
    wire_inject_us: float = 1.40      # wire-DMA engine start per packet
    wire_gap_us: float = 0.25         # inter-packet gap (same source NIC)
    wire_header_bytes: int = 8
    switch_latency_us: float = 0.55   # cut-through fall-through
    link_propagation_us: float = 0.75 # cable + serialisation per hop

    # ----------------------------------------------- user-level baseline
    #: GM-class descriptors are compact (virtual address, length,
    #: destination, flags) — unlike BCL's 15-word physical page list
    ul_descriptor_words: int = 4
    ul_doorbell_words: int = 1
    #: per-message protection/context validation the NIC must do when
    #: user processes talk to it directly (BCL moves this into the kernel)
    ul_context_check_us: float = 0.40
    nic_tlb_entries: int = 256        # NIC-side translation cache
    #: warm per-page lookup, matched to BCL's 2-words-per-page descriptor
    #: PIO (0.48 us) so the semi-user extra stays ~constant with size,
    #: as the paper reports ("only 4.17 us is added to 898 us")
    nic_tlb_hit_us: float = 0.48
    nic_tlb_miss_us: float = 4.00     # fetch mapping from host page table

    # ---------------------------------------------- kernel-level baseline
    kl_proto_send_us: float = 3.00    # per-datagram protocol processing
    kl_proto_recv_us: float = 3.00
    kl_checksum_mb_s: float = 200.0   # software checksum rate
    kl_mtu: int = 4096

    # ----------------------------------------------------- intra-node path
    shm_post_us: float = 0.80         # enqueue message header + flag
    shm_check_us: float = 0.87        # sequence check + dequeue
    shm_chunk_bytes: int = 8192       # pipelining granularity
    shm_ring_slots: int = 16

    # ------------------------------------------------------------- fabric
    #: fat-tree arity override (even, >= 2).  0 = auto: the smallest
    #: even k whose 3-level Clos capacity k^3/4 holds ``n_nodes`` hosts.
    fat_tree_k: int = 0
    #: seed mixed into the deterministic ECMP hash that picks among
    #: equal-cost fat-tree uplinks; same seed => same routes, always
    ecmp_seed: int = 1
    #: validate every precomputed source route against switch radix and
    #: physical connectivity at build_network time (fail fast instead of
    #: silently dropping packets at forwarding time)
    strict_routes: bool = True

    # ------------------------------------------- NIC-offloaded collectives
    #: fan-in/fan-out arity of the NIC collective tree over nodes
    coll_fanout: int = 4
    #: MCP processing per collective packet handled in firmware (fan-in
    #: combine / fan-out replicate step; LANai-resident, no host trap)
    mcp_coll_proc_us: float = 1.20
    #: largest payload the firmware reduces/broadcasts NIC-side; bigger
    #: collectives fall back to the host algorithms (LANai SRAM budget)
    nic_coll_max_bytes: int = 4096

    # ------------------------------------------------------- engine tuning
    #: Carry length-only flyweight payloads instead of real bytes.  All
    #: virtual timing derives from payload *lengths* (wire occupancy,
    #: DMA sizes, copy costs), so schedules and clocks are identical;
    #: only content checks differ (delivery oracles that verify bytes
    #: must run with real payloads).
    flyweight_payloads: bool = False
    #: Model a host DMA as one coalesced bus hold covering all bursts
    #: instead of re-arbitrating the PCI bus per 4 KB burst.  Total
    #: transfer time is preserved exactly (per-burst rounding included);
    #: what coarsens is arbitration granularity under bus contention.
    dma_burst_coalesce: bool = False

    # -------------------------------------------------------- upper layers
    eadi_eager_threshold: int = 4096  # <= goes through the system channel
    eadi_segment_bytes: int = 65536   # rendezvous segment grant size
    mpi_send_us: float = 0.95
    mpi_recv_us: float = 0.95
    mpi_match_us: float = 2.15       # matching + posted/unexpected queues
    mpi_inter_extra_us: float = 0.30  # envelope handling on the remote path
    mpi_inter_segment_us: float = 4.40  # per-segment library processing
    pvm_send_us: float = 1.15
    pvm_recv_us: float = 1.15
    pvm_match_us: float = 2.15
    pvm_inter_extra_us: float = 0.00
    pvm_inter_segment_us: float = 6.00

    # ------------------------------------------------------------- serving
    #: front-switch dispatch per admitted/shed request at the server:
    #: header parse + admission decision + queue insert (host CPU)
    serve_dispatch_us: float = 0.80
    #: worker pickup/handoff overhead per serviced request (dequeue,
    #: context, reply setup) — charged on the worker, not the intake CPU
    serve_worker_overhead_us: float = 0.50

    # -------------------------------------------------------------- helpers
    def scaled_host_us(self, us_value: float) -> float:
        """Host software cost, scaled for CPU frequency ablations."""
        return us_value * (self.cpu_ref_mhz / self.cpu_mhz)

    def pio_write_us(self, words: int) -> float:
        return words * self.pio_write_word_us

    def pio_read_us(self, words: int) -> float:
        return words * self.pio_read_word_us

    def descriptor_words(self, n_pages: int) -> int:
        """Send-descriptor size for a buffer spanning ``n_pages`` pages.

        The 15-word base descriptor covers control fields plus the
        physical address/length of the first page; each additional page
        appends an (address, length) pair.
        """
        extra = max(0, n_pages - 1)
        return self.descriptor_base_words + extra * self.descriptor_words_per_page

    def wire_ns_per_byte(self) -> float:
        return 1e3 / self.wire_mb_s

    def replace(self, **changes) -> "CostModel":
        """Return a copy with ``changes`` applied (ablation helper)."""
        return dataclasses.replace(self, **changes)

    def validate(self) -> None:
        """Sanity-check the calibration's internal consistency."""
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, (int, float)) and value < 0:
                raise ValueError(f"{f.name} must be non-negative, got {value}")
        if self.mtu <= self.wire_header_bytes:
            raise ValueError("mtu must exceed the wire header size")
        if self.page_size & (self.page_size - 1):
            raise ValueError("page_size must be a power of two")
        if self.fat_tree_k and (self.fat_tree_k < 2 or self.fat_tree_k % 2):
            raise ValueError("fat_tree_k must be an even value >= 2 (or 0)")
        if self.coll_fanout < 2:
            raise ValueError("coll_fanout must be >= 2")


def dawning_3000() -> CostModel:
    """The default calibration (see module docstring for the derivation)."""
    model = CostModel()
    model.validate()
    return model


def dnet_mesh() -> CostModel:
    """The paper's second SAN: the custom nwrc 2-D mesh ("Dnet").

    "The key technique of nwrc 2-D mesh is a routing chip called
    nwrc1032 ... works at 40 MHz ... 6 data channels with 32 bits data
    for each path.  The network interface, called PMI960, is a 33 MHz,
    32 bits PCI adapter with an Intel i960 microprocessor as the DMA
    engine and communication co-processor."

    Relative to the Myrinet calibration: a 32-bit/33 MHz PCI (half the
    burst rate), a slower communication co-processor (i960 vs LANai:
    scaled firmware costs), and 40 MHz x 32-bit links (160 MB/s raw,
    like Myrinet, but with a different per-hop router profile).  Use
    with ``topology="mesh2d"``.
    """
    model = CostModel(
        dma_mb_s=132.0,            # 32-bit / 33 MHz PCI
        mcp_fetch_request_us=1.10,
        mcp_send_proc_us=3.80,     # i960 runs the control program slower
        mcp_recv_proc_us=3.75,
        mcp_ack_proc_us=0.85,
        wire_mb_s=160.0,           # 32 bit @ 40 MHz
        wire_inject_us=1.80,
        switch_latency_us=0.35,    # wormhole router fall-through
        link_propagation_us=0.40,  # short 2-inch AMP cables
    )
    model.validate()
    return model


def lossy_dawning() -> CostModel:
    """The default calibration tuned for fault-injection campaigns.

    Identical hardware to :func:`dawning_3000`, but with the go-back-N
    retransmission timer shortened from its conservative 1 ms default to
    200 us.  Under injected loss the timer dominates every recovery that
    NACK fast-retransmit cannot handle (e.g. a dropped *last* packet of
    a message leaves no later arrival to trigger the NACK), so the
    resilience sweep would otherwise spend most of its simulated time
    idle inside timeout waits.  The shorter timer is still an order of
    magnitude above the loaded round-trip time, so it never fires
    spuriously.
    """
    model = CostModel(retransmit_timeout_us=200.0)
    model.validate()
    return model


DAWNING_3000: CostModel = dawning_3000()
DNET_MESH: CostModel = dnet_mesh()
LOSSY_DAWNING: CostModel = lossy_dawning()
